// Level-banded shard partitioning for the multi-process sharded backend.
//
// The expanded battery chain is banded in the charge-level grid: after
// reachable-closure compaction and (optionally) level reordering, the
// compacted transpose's rows group naturally into contiguous level bands.
// Two consumers partition those rows today and must agree on the weight
// model:
//
//   * linalg::TileStore cuts the transpose into spill slabs once the
//     estimated serialized size (per-row entry-table slot + 4 bytes per
//     entry + a capped dictionary allowance) reaches the tile target --
//     the entry-scaled cut estimator, factored out here as
//     entry_scaled_cut_bounds() so the spill format and the shard
//     partition cannot drift.
//
//   * ShardPlan splits the same rows into exactly N contiguous bands of
//     near-equal entry-scaled weight (the fair-share walk of
//     CsrMatrix::balanced_row_ranges over the same per-row byte
//     estimate), one band per worker process of the sharded engine.
//
// Beyond the bands themselves, ShardPlan precomputes everything the halo
// exchange needs *before* the coordinator forks: each band's column
// footprint (the contiguous x-index interval its gather reads) and the
// pairwise halo spans -- rows owned by band s that band d's entries read.
// Per DTMC step a worker then sends exactly its owned spans and receives
// exactly its footprint's foreign rows; halo_bytes_per_step() is the
// static per-step exchange volume the bench telemetry reports.
//
// Partitioning never touches arithmetic: per-row gather results are
// partition-independent, so any band layout yields bitwise-identical
// curves (the sharded-vs-parallel identity tests pin this down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kibamrm::linalg {

class CsrMatrix;

/// Estimated serialized bytes of one encoded row with `entries` stored
/// entries: one uint32 entry-table slot plus 4 bytes per entry -- the
/// row-weight unit shared by the TileStore slab cuts and the shard
/// partition.
inline std::uint64_t entry_scaled_row_bytes(std::uint32_t entries) {
  return 4 + static_cast<std::uint64_t>(entries) * 4;
}

/// TileStore's cut policy over per-row entry counts: walk the rows,
/// accumulate entry_scaled_row_bytes plus a dictionary allowance of
/// 8 * min(entries_so_far, 512) bytes, and cut once header_bytes + the
/// running estimate reaches target_bytes.  Returns the bounds including
/// 0 and counts.size(); never cuts after the last row.
std::vector<std::size_t> entry_scaled_cut_bounds(
    std::span<const std::uint32_t> counts, std::size_t target_bytes,
    std::size_t header_bytes);

/// Fair-share split of rows [row_begin, row_end) into at most `parts`
/// contiguous ranges of near-equal weight, each row weighted
/// counts[row] + 1 (the +1 charges the unconditional output write) --
/// the same walk as CsrMatrix::balanced_row_ranges, usable without a
/// materialised matrix (the plan cache keeps only the counts).  Returns
/// boundaries with front() == row_begin and back() == row_end.
std::vector<std::size_t> balanced_count_ranges(
    std::span<const std::uint32_t> counts, std::size_t row_begin,
    std::size_t row_end, std::size_t parts);

/// One worker's contiguous row band plus its gather footprint.
struct ShardBand {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  /// Stored entries inside the band (the load-balance unit).
  std::uint64_t nonzeros = 0;
  /// Column footprint [col_begin, col_end): the x entries the band's
  /// rows read.  Empty (col_begin == col_end) for an entry-less band.
  std::size_t col_begin = 0;
  std::size_t col_end = 0;

  std::size_t rows() const { return row_end - row_begin; }
};

/// Rows [begin, end) owned by band `source` that band `dest`'s gather
/// reads -- one per-step halo frame on the source -> dest channel.
struct HaloSpan {
  std::size_t source = 0;
  std::size_t dest = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t rows() const { return end - begin; }
};

class ShardPlan {
 public:
  /// Partitions `rows` rows into exactly `shards` bands balanced by
  /// entry-scaled weight and derives halo spans from the per-row column
  /// footprints [col_lo[r], col_hi[r]] (inclusive; ignored for rows with
  /// counts[r] == 0).  Chains with fewer rows than shards get trailing
  /// empty bands, so N workers always fork.
  static ShardPlan build(std::span<const std::uint32_t> counts,
                         std::span<const std::uint32_t> col_lo,
                         std::span<const std::uint32_t> col_hi,
                         std::size_t shards);

  /// Convenience overload deriving counts and footprints from a
  /// materialised (transposed) matrix.
  static ShardPlan build(const CsrMatrix& transposed, std::size_t shards);

  std::size_t shard_count() const { return bands_.size(); }
  const std::vector<ShardBand>& bands() const { return bands_; }
  const std::vector<HaloSpan>& halo_spans() const { return halos_; }

  /// Halo spans with the given source or destination band.
  std::vector<HaloSpan> spans_from(std::size_t source) const;
  std::vector<HaloSpan> spans_to(std::size_t dest) const;

  /// max/mean stored entries across non-empty bands (1.0 when balanced
  /// or empty) -- the shard_nnz_imbalance bench metric.
  double nnz_imbalance() const;

  /// Static per-step exchange volume: 8 bytes per halo row summed over
  /// every span (each span is one frame per DTMC step).
  std::uint64_t halo_bytes_per_step() const;

 private:
  std::vector<ShardBand> bands_;
  std::vector<HaloSpan> halos_;
};

}  // namespace kibamrm::linalg
