// Dense vector kernels used by the Markov-chain solvers.
//
// All kernels operate on std::vector<double> of matching sizes; size
// mismatches are programming errors and checked via KIBAMRM_REQUIRE.
#pragma once

#include <vector>

namespace kibamrm::linalg {

/// Sum of all entries.
double sum(const std::vector<double>& v);

/// Dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// v *= alpha.
void scale(std::vector<double>& v, double alpha);

/// Fills v with a constant.
void fill(std::vector<double>& v, double value);

/// max_i |a_i - b_i|.
double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b);

/// max_i |v_i|.
double linf_norm(const std::vector<double>& v);

/// Sum of |v_i|.
double l1_norm(const std::vector<double>& v);

/// Scales v so its entries sum to 1; throws NumericalError if the sum is
/// not positive.  Used to re-normalise probability vectors after long
/// uniformisation runs (guards against drift, not against bugs).
void normalize_probability(std::vector<double>& v);

/// True iff every entry lies in [-eps, 1+eps] and the sum is within eps of 1.
bool is_probability_vector(const std::vector<double>& v, double eps = 1e-9);

}  // namespace kibamrm::linalg
