#include "kibamrm/linalg/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/kernels_internal.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::linalg {

CooBuilder::CooBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  KIBAMRM_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  KIBAMRM_REQUIRE(rows <= std::numeric_limits<std::uint32_t>::max() &&
                      cols <= std::numeric_limits<std::uint32_t>::max(),
                  "matrix dimensions exceed 32-bit index range");
}

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  KIBAMRM_REQUIRE(row < rows_ && col < cols_, "triplet out of bounds");
  if (value == 0.0) return;
  triplets_.push_back({static_cast<std::uint32_t>(row),
                       static_cast<std::uint32_t>(col), value});
}

CsrMatrix CooBuilder::build() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix result(rows_, cols_);
  result.row_ptr_.assign(rows_ + 1, 0);
  result.col_idx_.reserve(triplets_.size());
  result.values_.reserve(triplets_.size());

  std::size_t i = 0;
  for (std::size_t row = 0; row < rows_; ++row) {
    while (i < triplets_.size() && triplets_[i].row == row) {
      const std::uint32_t col = triplets_[i].col;
      double value = 0.0;
      while (i < triplets_.size() && triplets_[i].row == row &&
             triplets_[i].col == col) {
        value += triplets_[i].value;
        ++i;
      }
      if (value != 0.0) {
        result.col_idx_.push_back(col);
        result.values_.push_back(value);
      }
    }
    result.row_ptr_[row + 1] = static_cast<std::uint32_t>(
        result.col_idx_.size());
  }

  triplets_.clear();
  triplets_.shrink_to_fit();
  return result;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  KIBAMRM_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& out) const {
  KIBAMRM_REQUIRE(x.size() == cols_, "multiply: dimension mismatch");
  out.assign(rows_, 0.0);
  for (std::size_t row = 0; row < rows_; ++row) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    out[row] = acc;
  }
}

void CsrMatrix::multiply_range(const std::vector<double>& x,
                               std::vector<double>& out,
                               std::size_t row_begin,
                               std::size_t row_end) const {
  KIBAMRM_REQUIRE(x.size() == cols_, "multiply_range: dimension mismatch");
  KIBAMRM_REQUIRE(out.size() == rows_,
                  "multiply_range: output not pre-sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows_,
                  "multiply_range: invalid row range");
#if KIBAMRM_HAVE_AVX2_TIER
  // Opt-in row grouping (see kernels::gather_grouping): four equal-length
  // rows per SIMD group with the same sequential per-row accumulation
  // order, so scalar and SIMD results agree bitwise (the i32 gathers
  // bound the index range).
  const kernels::Dispatch tier =
      kernels::double_tier(kernels::active_dispatch());
  if (kernels::gather_grouping() &&
      (tier == kernels::Dispatch::kAvx2 ||
       tier == kernels::Dispatch::kAvx512) &&
      cols_ <= static_cast<std::size_t>(
                   std::numeric_limits<std::int32_t>::max())) {
    kernels::detail::avx2_csr_multiply_rows(row_ptr_.data(), col_idx_.data(),
                                            values_.data(), x.data(),
                                            out.data(), row_begin, row_end);
    return;
  }
#endif
  for (std::size_t row = row_begin; row < row_end; ++row) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    out[row] = acc;
  }
}

std::vector<std::size_t> CsrMatrix::balanced_row_ranges(
    std::size_t parts) const {
  KIBAMRM_REQUIRE(parts > 0, "balanced_row_ranges: parts must be positive");
  // Weight each row by nnz + 1: the +1 charges the unconditional output
  // write, so a block of empty rows still counts as work.
  std::vector<std::size_t> ranges = {0};
  double outstanding = static_cast<double>(nonzeros() + rows_);
  double carried = 0.0;
  for (std::size_t row = 0; row < rows_; ++row) {
    carried += static_cast<double>(row_ptr_[row + 1] - row_ptr_[row]) + 1.0;
    // Close the current range once it holds its fair share of the weight
    // still outstanding (recomputed after every split, so one huge row
    // cannot starve the later ranges), never creating more ranges than
    // rows remain.
    const std::size_t open = ranges.size();
    const double fair_share =
        outstanding / static_cast<double>(parts - open + 1);
    if (open < parts && carried >= fair_share &&
        rows_ - row - 1 >= parts - open) {
      ranges.push_back(row + 1);
      outstanding -= carried;
      carried = 0.0;
    }
  }
  ranges.push_back(rows_);
  return ranges;
}

void CsrMatrix::left_multiply(const std::vector<double>& pi,
                              std::vector<double>& out) const {
  KIBAMRM_REQUIRE(pi.size() == rows_, "left_multiply: dimension mismatch");
  out.assign(cols_, 0.0);
  for (std::size_t row = 0; row < rows_; ++row) {
    const double p = pi[row];
    if (p == 0.0) continue;  // transient vectors are mostly sparse early on
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      out[col_idx_[k]] += p * values_[k];
    }
  }
}

void CsrMatrix::left_multiply_partitioned(
    const std::vector<double>& pi, std::vector<double>& out,
    std::span<const std::uint32_t> active,
    std::span<const std::uint32_t> identity) const {
  KIBAMRM_REQUIRE(pi.size() == rows_,
                  "left_multiply_partitioned: dimension mismatch");
  KIBAMRM_REQUIRE(active.size() + identity.size() == rows_,
                  "left_multiply_partitioned: partition does not cover all "
                  "rows");
  out.assign(cols_, 0.0);
  for (const std::uint32_t row : active) {
    const double p = pi[row];
    if (p == 0.0) continue;  // transient vectors are mostly sparse early on
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      out[col_idx_[k]] += p * values_[k];
    }
  }
  for (const std::uint32_t row : identity) {
    out[row] += pi[row];
  }
}

double CsrMatrix::left_multiply_partitioned_fused(
    const std::vector<double>& pi, std::vector<double>& out,
    std::span<const std::uint32_t> active,
    std::span<const std::uint32_t> identity, double weight,
    std::vector<double>& accum) const {
  KIBAMRM_REQUIRE(rows_ == cols_,
                  "left_multiply_partitioned_fused: matrix must be square");
  KIBAMRM_REQUIRE(pi.size() == rows_,
                  "left_multiply_partitioned_fused: dimension mismatch");
  KIBAMRM_REQUIRE(accum.size() == cols_,
                  "left_multiply_partitioned_fused: accumulator mismatch");
  KIBAMRM_REQUIRE(active.size() + identity.size() == rows_,
                  "left_multiply_partitioned_fused: partition does not cover "
                  "all rows");
  out.assign(cols_, 0.0);
  for (const std::uint32_t row : active) {
    const double p = pi[row];
    if (p == 0.0) continue;  // transient vectors are mostly sparse early on
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      out[col_idx_[k]] += p * values_[k];
    }
  }
  for (const std::uint32_t row : identity) {
    out[row] += pi[row];
  }
  // Finishing sweep: the scatter cannot fold per-entry work into itself
  // (entries are only final once every row has scattered), but the
  // accumulate and the step norm share one pass here instead of two.
  double delta = 0.0;
  if (weight != 0.0) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double v = out[i];
      accum[i] += weight * v;
      delta = std::max(delta, std::abs(v - pi[i]));
    }
  } else {
    for (std::size_t i = 0; i < cols_; ++i) {
      delta = std::max(delta, std::abs(out[i] - pi[i]));
    }
  }
  return delta;
}

double CsrMatrix::multiply_fused_range(const std::vector<double>& x,
                                       std::vector<double>& out,
                                       std::vector<double>& accum,
                                       double weight, std::size_t row_begin,
                                       std::size_t row_end) const {
  KIBAMRM_REQUIRE(rows_ == cols_,
                  "multiply_fused_range: matrix must be square");
  KIBAMRM_REQUIRE(x.size() == cols_, "multiply_fused_range: dimension "
                                     "mismatch");
  KIBAMRM_REQUIRE(out.size() == rows_ && accum.size() == rows_,
                  "multiply_fused_range: outputs not pre-sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows_,
                  "multiply_fused_range: invalid row range");
  // Generator rows of the expanded battery chains average ~3 stored
  // entries, so the row loop -- not the dot product -- is the hot path.
  // Dispatching on the row length removes the inner-loop control overhead
  // for the short rows that dominate; every case evaluates in one fixed
  // order, so the value does not depend on the shard partition.
  double delta = 0.0;
  for (std::size_t row = row_begin; row < row_end; ++row) {
    const std::uint32_t b = row_ptr_[row];
    const std::uint32_t e = row_ptr_[row + 1];
    double v;
    switch (e - b) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = values_[b] * x[col_idx_[b]];
        break;
      case 2:
        v = values_[b] * x[col_idx_[b]] + values_[b + 1] * x[col_idx_[b + 1]];
        break;
      case 3:
        v = values_[b] * x[col_idx_[b]] +
            values_[b + 1] * x[col_idx_[b + 1]] +
            values_[b + 2] * x[col_idx_[b + 2]];
        break;
      case 4:
        v = (values_[b] * x[col_idx_[b]] +
             values_[b + 1] * x[col_idx_[b + 1]]) +
            (values_[b + 2] * x[col_idx_[b + 2]] +
             values_[b + 3] * x[col_idx_[b + 3]]);
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint32_t k = b;
        for (; k + 2 <= e; k += 2) {
          s0 += values_[k] * x[col_idx_[k]];
          s1 += values_[k + 1] * x[col_idx_[k + 1]];
        }
        if (k < e) s0 += values_[k] * x[col_idx_[k]];
        v = s0 + s1;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - x[row]));
  }
  return delta;
}

std::vector<std::uint32_t> CsrMatrix::identity_rows() const {
  std::vector<std::uint32_t> rows;
  if (rows_ != cols_) return rows;
  for (std::size_t row = 0; row < rows_; ++row) {
    const std::uint32_t begin = row_ptr_[row];
    if (row_ptr_[row + 1] == begin + 1 && col_idx_[begin] == row &&
        values_[begin] == 1.0) {
      rows.push_back(static_cast<std::uint32_t>(row));
    }
  }
  return rows;
}

std::vector<double> CsrMatrix::row_sums() const {
  std::vector<double> sums(rows_, 0.0);
  for (std::size_t row = 0; row < rows_; ++row) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      acc += values_[k];
    }
    sums[row] = acc;
  }
  return sums;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  KIBAMRM_REQUIRE(row < rows_ && col < cols_, "at: index out of bounds");
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(col));
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

CsrMatrix CsrMatrix::scaled(double alpha) const {
  CsrMatrix result = *this;
  for (double& v : result.values_) v *= alpha;
  return result;
}

double CsrMatrix::max_exit_rate() const {
  KIBAMRM_REQUIRE(rows_ == cols_, "max_exit_rate: matrix must be square");
  double worst = 0.0;
  for (std::size_t row = 0; row < rows_; ++row) {
    worst = std::max(worst, -at(row, row));
  }
  return worst;
}

CsrMatrix CsrMatrix::uniformized(double q) const {
  KIBAMRM_REQUIRE(rows_ == cols_, "uniformized: matrix must be square");
  KIBAMRM_REQUIRE(q > 0.0, "uniformisation rate must be positive");
  const double max_exit = max_exit_rate();
  KIBAMRM_REQUIRE(q * (1.0 + 1e-12) >= max_exit,
                  "uniformisation rate below the maximal exit rate");

  // P = I + Q/q.  The diagonal of Q may be absent in the sparsity pattern
  // (isolated/absorbing states), so rebuild through a COO pass.
  CooBuilder builder(rows_, cols_);
  builder.reserve(nonzeros() + rows_);
  for (std::size_t row = 0; row < rows_; ++row) {
    builder.add(row, row, 1.0);
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      builder.add(row, col_idx_[k], values_[k] / q);
    }
  }
  CsrMatrix p = builder.build();
  // Clamp diagonal round-off: entries must stay within [0, 1].
  for (std::size_t row = 0; row < p.rows_; ++row) {
    for (std::uint32_t k = p.row_ptr_[row]; k < p.row_ptr_[row + 1]; ++k) {
      if (p.col_idx_[k] == row) {
        p.values_[k] = std::clamp(p.values_[k], 0.0, 1.0);
      }
    }
  }
  return p;
}

CsrMatrix CsrMatrix::transposed() const {
  CooBuilder builder(cols_, rows_);
  builder.reserve(nonzeros());
  for (std::size_t row = 0; row < rows_; ++row) {
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      builder.add(col_idx_[k], row, values_[k]);
    }
  }
  return builder.build();
}

std::vector<std::uint32_t> CsrMatrix::reachable_rows(
    std::span<const std::uint32_t> seeds) const {
  KIBAMRM_REQUIRE(rows_ == cols_, "reachable_rows: matrix must be square");
  std::vector<std::uint8_t> seen(rows_, 0);
  std::vector<std::uint32_t> frontier;  // doubles as the visited list
  frontier.reserve(seeds.size());
  for (const std::uint32_t seed : seeds) {
    KIBAMRM_REQUIRE(seed < rows_, "reachable_rows: seed out of range");
    if (!seen[seed]) {
      seen[seed] = 1;
      frontier.push_back(seed);
    }
  }
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::uint32_t row = frontier[head];
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      const std::uint32_t col = col_idx_[k];
      if (!seen[col]) {
        seen[col] = 1;
        frontier.push_back(col);
      }
    }
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

CsrMatrix CsrMatrix::transposed_submatrix(
    std::span<const std::uint32_t> keep) const {
  KIBAMRM_REQUIRE(rows_ == cols_,
                  "transposed_submatrix: matrix must be square");
  KIBAMRM_REQUIRE(!keep.empty(), "transposed_submatrix: empty row set");
  constexpr std::uint32_t kDropped = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> compact(rows_, kDropped);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    KIBAMRM_REQUIRE(keep[i] < rows_ && (i == 0 || keep[i] > keep[i - 1]),
                    "transposed_submatrix: keep must be sorted, unique and "
                    "in range");
    compact[keep[i]] = static_cast<std::uint32_t>(i);
  }
  std::size_t surviving = 0;
  for (const std::uint32_t row : keep) {
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      if (compact[col_idx_[k]] != kDropped) ++surviving;
    }
  }
  CooBuilder builder(keep.size(), keep.size());
  builder.reserve(surviving);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const std::uint32_t row = keep[i];
    for (std::uint32_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      const std::uint32_t col = compact[col_idx_[k]];
      if (col != kDropped) {
        builder.add(col, i, values_[k]);
      }
    }
  }
  return builder.build();
}

}  // namespace kibamrm::linalg
