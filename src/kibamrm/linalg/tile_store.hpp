// Out-of-core tile store for the uniformisation hot path.
//
// Every in-memory uniformisation backend materialises P = I + Q/q, the
// reachable-closure compaction and the transposed gather structure before
// the power iteration starts -- three matrix-sized allocations live at
// once, which is exactly what caps the reachable Delta.  TileStore breaks
// that ceiling: it partitions the compacted transposed P into contiguous
// row bands ("tiles"), ENCODES EACH BAND DIRECTLY FROM THE GENERATOR
// (uniformise + transpose + compact on the fly, band-limited scans -- the
// full P, its transpose and the gather plan are never resident), writes
// each tile as a self-contained checksummed slab to a spill file, and
// streams the slabs back per uniformisation step.
//
// Bitwise contract.  The tile kernel (multiply_fused_tile) reproduces the
// canonical per-length evaluation order of linalg::FusedGatherPlan /
// CsrMatrix::multiply_fused_range term for term, and the streaming band
// build reproduces CsrMatrix::uniformized + transposed_submatrix entry
// for entry (same value arithmetic, same zero-dropping, same diagonal
// clamp, same entry order).  Tiling therefore never changes a bit: the
// ooc backend's curves are bitwise identical to the in-memory fused
// backend at every tile size, thread count and shard partition.
//
// Slab encodings (chosen per tile, narrowest that fits):
//   kDict16Off16   uint16 dictionary ids + int16 (col - row) offsets --
//                  the level/RCM-banded battery chains
//   kDict16Off32   int32 offsets for tiles whose band escapes int16
//   kInlineOff32   raw doubles per entry for tiles with > 65536 distinct
//                  values (no dictionary); always representable
//
// File layout: fixed header, 4096-aligned slabs, tile index at the end
// (offset patched into the header after the last slab).  Every slab and
// the index carry FNV-1a checksums; open() and first read validate, so a
// corrupt or truncated spill file surfaces as kibamrm::Error before any
// kernel dereferences a damaged offset.  The format is process-local
// scratch (native endianness), not an interchange format -- but it is
// deliberately self-contained per tile, which is the shape a persistent
// cross-request plan cache (ROADMAP item 1) needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kibamrm/common/spill_io.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

struct TileStoreOptions {
  /// Serialized-size target per tile; the build cuts a tile once its
  /// estimated slab reaches this many bytes (>= 1; a huge value yields a
  /// single resident tile, degenerating to in-memory streaming).
  std::size_t tile_bytes = 8ull << 20;
  /// Attempt O_DIRECT when streaming tiles back (falls back to buffered
  /// reads where refused); buffered IO additionally issues
  /// posix_fadvise(WILLNEED) ahead of each tile.
  bool direct_io = false;
};

/// Structure counters gathered during the streaming build (the ooc
/// analogue of linalg::structure_stats on the in-memory transpose).
struct TileBuildStats {
  std::uint64_t bandwidth = 0;       ///< max |col - row| in compact space
  std::uint64_t diagonal_rows = 0;   ///< rows repeating the previous row's
                                     ///< offset pattern (diagonal runs)
  std::uint64_t longest_diagonal_run = 0;
};

class TileStore {
 public:
  /// Builds the tile store for the compacted transposed uniformised
  /// matrix of `generator` (P = I + generator/rate restricted to the
  /// sorted reachable closure `keep`), writing slabs to `path`.  Streams
  /// band by band: peak transient memory is O(states) index arrays plus
  /// one tile's entries, never the full P or its transpose.
  static TileStore build(const CsrMatrix& generator,
                         std::span<const std::uint32_t> keep, double rate,
                         const TileStoreOptions& options,
                         const std::string& path);

  /// Opens an existing store read-only and validates header + index
  /// checksums; slab payloads validate on first read.
  static TileStore open(const std::string& path,
                        const TileStoreOptions& options);

  TileStore(TileStore&&) = default;
  TileStore& operator=(TileStore&&) = default;

  std::size_t rows() const { return rows_; }
  std::size_t nonzeros() const { return nonzeros_; }
  std::size_t tile_count() const { return tiles_.size(); }
  std::size_t tile_row_begin(std::size_t tile) const {
    return tiles_[tile].row_begin;
  }
  std::size_t tile_row_end(std::size_t tile) const {
    return tiles_[tile].row_end;
  }
  std::size_t tile_entries(std::size_t tile) const {
    return tiles_[tile].entries;
  }
  std::size_t tile_slab_bytes(std::size_t tile) const {
    return tiles_[tile].slab_bytes;
  }
  /// Largest slab_bytes over all tiles (stream-buffer sizing).
  std::size_t max_slab_bytes() const { return max_slab_bytes_; }
  /// Total slab bytes on disk (excluding header/index/padding).
  std::uint64_t payload_bytes() const { return payload_bytes_; }
  /// Full spill-file size including header, padding and index.
  std::uint64_t file_bytes() const { return file_.size(); }
  bool direct_io_active() const { return file_.direct_active(); }
  const TileBuildStats& build_stats() const { return build_stats_; }

  /// Reads tile `tile` into `buffer` (resized to the slab).  The first
  /// read of each tile verifies its checksum and structural invariants
  /// (entry counts, offset bounds, dictionary ids); corruption throws
  /// kibamrm::Error.  Later re-reads of a validated tile skip the scan --
  /// the stream loop reads every tile every uniformisation step, and a
  /// per-step checksum pass would cost as much as the kernel itself.
  void read_tile(std::size_t tile, common::AlignedBuffer& buffer);

  /// Readahead hint for an upcoming read_tile.
  void prefetch_tile(std::size_t tile) const;

  /// Fused uniformisation step over local rows [local_begin, local_end)
  /// of a loaded slab: out[row] = dot(row, x), accum[row] += weight *
  /// out[row] (skipped when weight == 0), returns max |out[row] -
  /// x[row]| over the range -- bitwise identical to
  /// FusedGatherPlan::multiply_fused_range on the same rows of the
  /// in-memory compacted transpose.  Disjoint local ranges write
  /// disjoint entries, so ranges shard across threads freely.
  double multiply_fused_tile(std::size_t tile,
                             const common::AlignedBuffer& slab,
                             const std::vector<double>& x,
                             std::vector<double>& out,
                             std::vector<double>& accum, double weight,
                             std::size_t local_begin,
                             std::size_t local_end) const;

  /// Splits tile `tile`'s local rows into at most `parts` entry-balanced
  /// ranges (boundaries in local row units, first 0, last = tile rows).
  /// Requires the tile to have been read at least once (the per-row
  /// entry table lives in the slab).
  std::vector<std::size_t> balanced_tile_ranges(
      std::size_t tile, const common::AlignedBuffer& slab,
      std::size_t parts) const;

  /// Unlinks the spill file while keeping it readable (space reclaims
  /// when the store is destroyed, even on abnormal exit).
  void unlink_keeping_open() { file_.unlink_keeping_open(); }

 private:
  enum class Encoding : std::uint32_t {
    kDict16Off16 = 0,
    kDict16Off32 = 1,
    kInlineOff32 = 2,
  };

  struct TileInfo {
    std::uint64_t file_offset = 0;  // 4096-aligned
    std::uint64_t slab_bytes = 0;
    std::uint64_t row_begin = 0;
    std::uint64_t row_end = 0;
    std::uint64_t entries = 0;
    std::uint64_t checksum = 0;
  };

  /// Parsed view of one slab; all pointers alias the read buffer.
  struct SlabView {
    Encoding encoding;
    std::size_t rows = 0;
    std::size_t entries = 0;
    std::size_t dict_size = 0;
    const std::uint32_t* entry_start = nullptr;  // rows + 1
    const double* dictionary = nullptr;          // dict encodings
    const double* inline_values = nullptr;       // kInlineOff32
    const std::uint16_t* ids = nullptr;          // dict encodings
    const std::int16_t* offsets16 = nullptr;     // kDict16Off16
    const std::int32_t* offsets32 = nullptr;     // wider encodings
  };

  TileStore() = default;

  SlabView parse_slab(std::size_t tile, const std::byte* slab,
                      std::size_t slab_bytes) const;
  void validate_slab(std::size_t tile, const SlabView& view) const;
  void load_index();

  common::SpillFile file_;
  std::size_t rows_ = 0;
  std::uint64_t nonzeros_ = 0;
  std::vector<TileInfo> tiles_;
  std::vector<std::uint8_t> validated_;  // per-tile first-read flag
  std::size_t max_slab_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  TileBuildStats build_stats_;
};

/// Reachable closure of `seeds` over exactly the sparsity pattern of
/// P = I + generator/rate (generator entries whose scaled value
/// underflows to zero are skipped, matching uniformized()'s zero drop),
/// sorted ascending -- bitwise equal to
/// generator.uniformized(rate).reachable_rows(seeds) without ever
/// materialising P.
std::vector<std::uint32_t> tile_store_reachable_rows(
    const CsrMatrix& generator, std::span<const std::uint32_t> seeds,
    double rate);

}  // namespace kibamrm::linalg
