// AVX2 tier of the dispatched kernel layer.  Compiled with -mavx2 and FP
// contraction off (see CMakeLists); every kernel reproduces the canonical
// arithmetic order of its scalar counterpart bit for bit:
//
//   * reductions hold the contract's interleaved lanes in ymm registers
//     (four chained accumulators hide the add latency without changing
//     the order -- the 16-lane structure IS the contract),
//   * element-wise kernels round per element, and no fused multiply-add
//     is ever emitted (the contract fixes the intermediate rounding),
//   * the gather kernels process runs of equal-length rows four at a
//     time, evaluating each row in the same per-length order as the
//     scalar switch -- grouping changes which rows share a register,
//     never the order within a row.
#include "kibamrm/linalg/kernels_internal.hpp"

#if KIBAMRM_HAVE_AVX2_TIER

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::linalg::kernels::detail {

namespace {

/// Canonical lane combine of one reduction block: (l0+l2)+(l1+l3).
inline double lane_combine(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

inline double lane_max(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

/// One block of the fixed-block dot: sixteen interleaved lanes in four
/// registers (element i feeds register (i/4)%4, lane i%4), folded as
/// ((A0+A2)+(A1+A3)) -> lane combine, then a four-lane loop on A0 and a
/// sequential tail.  kernels.cpp walks the identical structure in scalar.
inline double dot_block(const double* a, const double* b, std::size_t begin,
                        std::size_t end) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  std::size_t i = begin;
  for (; i + 16 <= end; i += 16) {
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(a + i + 8),
                                         _mm256_loadu_pd(b + i + 8)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(a + i + 12),
                                         _mm256_loadu_pd(b + i + 12)));
  }
  for (; i + 4 <= end; i += 4) {
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
  }
  double tail = 0.0;
  for (; i < end; ++i) tail += a[i] * b[i];
  const __m256d folded =
      _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3));
  return lane_combine(folded) + tail;
}

}  // namespace

void avx2_dot_blocks(const double* a, const double* b, std::size_t n,
                     std::size_t block_begin, std::size_t block_end,
                     double* partials) {
  for (std::size_t block = block_begin; block < block_end; ++block) {
    const std::size_t begin = block * kBlockDoubles;
    const std::size_t end = std::min(n, begin + kBlockDoubles);
    partials[block] = dot_block(a, b, begin, end);
  }
}

void avx2_axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void avx2_scale(double* v, double alpha, std::size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(av, _mm256_loadu_pd(v + i)));
  }
  for (; i < n; ++i) v[i] *= alpha;
}

void avx2_csr_multiply_rows(const std::uint32_t* row_ptr,
                            const std::uint32_t* col_idx,
                            const double* values, const double* x,
                            double* out, std::size_t row_begin,
                            std::size_t row_end) {
  constexpr std::uint32_t kMaxGroupedLength = 12;
  std::size_t row = row_begin;
  while (row < row_end) {
    const std::uint32_t b = row_ptr[row];
    const std::uint32_t length = row_ptr[row + 1] - b;
    // Four consecutive rows of one length: their entries sit at stride
    // `length`, so columns and values gather with one constant index
    // vector per run.  Sequential accumulation over the entries matches
    // the scalar per-row order for every length.
    if (row + 4 <= row_end && length >= 1 && length <= kMaxGroupedLength &&
        row_ptr[row + 2] == b + 2 * length &&
        row_ptr[row + 3] == b + 3 * length &&
        row_ptr[row + 4] == b + 4 * length) {
      const __m128i stride =
          _mm_set_epi32(static_cast<int>(3 * length),
                        static_cast<int>(2 * length),
                        static_cast<int>(length), 0);
      __m256d acc = _mm256_setzero_pd();
      for (std::uint32_t e = 0; e < length; ++e) {
        const std::size_t base = b + e;
        const __m128i cols = _mm_i32gather_epi32(
            reinterpret_cast<const int*>(col_idx + base), stride, 4);
        const __m256d xv = _mm256_i32gather_pd(x, cols, 8);
        const __m256d vv = _mm256_i32gather_pd(values + base, stride, 8);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
      }
      _mm256_storeu_pd(out + row, acc);
      row += 4;
    } else {
      double acc = 0.0;
      for (std::uint32_t k = b; k < row_ptr[row + 1]; ++k) {
        acc += values[k] * x[col_idx[k]];
      }
      out[row] = acc;
      ++row;
    }
  }
}

double avx2_plan_fused_rows(const std::uint8_t* lengths,
                            const std::uint32_t* entry_start,
                            const std::int16_t* offsets,
                            const std::uint16_t* value_ids,
                            const double* dictionary, const double* x,
                            double* out, double* accum, double weight,
                            std::size_t row_begin, std::size_t row_end) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d weight_v = _mm256_set1_pd(weight);
  __m256d delta_v = _mm256_setzero_pd();
  double delta = 0.0;
  std::size_t k = entry_start[row_begin];
  std::size_t row = row_begin;
  while (row < row_end) {
    const std::uint8_t length = lengths[row];
    if (row + 4 <= row_end && length >= 1 && length <= 4 &&
        lengths[row + 1] == length && lengths[row + 2] == length &&
        lengths[row + 3] == length) {
      // Entry e of the four rows: dictionary values and column offsets
      // sit at stride `length`.  Lanes are composed from scalar loads --
      // measured faster than vgatherdpd for this access pattern (the
      // hardware gather's fixed uop cost exceeds four indexed loads on
      // the tested microarchitectures).
      const auto entry = [&](std::uint32_t e) {
        const std::size_t k0 = k + e;
        const std::size_t k1 = k0 + length;
        const std::size_t k2 = k1 + length;
        const std::size_t k3 = k2 + length;
        const __m256d dv = _mm256_set_pd(
            dictionary[value_ids[k3]], dictionary[value_ids[k2]],
            dictionary[value_ids[k1]], dictionary[value_ids[k0]]);
        const __m256d xv = _mm256_set_pd(
            x[row + 3 + offsets[k3]], x[row + 2 + offsets[k2]],
            x[row + 1 + offsets[k1]], x[row + offsets[k0]]);
        return _mm256_mul_pd(dv, xv);
      };
      // Combine in the canonical per-length order of the scalar switch.
      __m256d v = entry(0);
      if (length == 2) {
        v = _mm256_add_pd(v, entry(1));
      } else if (length == 3) {
        v = _mm256_add_pd(_mm256_add_pd(v, entry(1)), entry(2));
      } else if (length == 4) {
        v = _mm256_add_pd(_mm256_add_pd(v, entry(1)),
                          _mm256_add_pd(entry(2), entry(3)));
      }
      _mm256_storeu_pd(out + row, v);
      if (weight != 0.0) {
        _mm256_storeu_pd(
            accum + row,
            _mm256_add_pd(_mm256_loadu_pd(accum + row),
                          _mm256_mul_pd(weight_v, v)));
      }
      delta_v = _mm256_max_pd(
          delta_v, _mm256_andnot_pd(
                       sign_mask,
                       _mm256_sub_pd(v, _mm256_loadu_pd(x + row))));
      k += 4 * static_cast<std::size_t>(length);
      row += 4;
    } else {
      // Ragged or long rows: the scalar switch, same orders as
      // FusedGatherPlan's scalar kernel.
      double v;
      switch (length) {
        case 0:
          v = 0.0;
          break;
        case 1:
          v = dictionary[value_ids[k]] * x[row + offsets[k]];
          break;
        case 2:
          v = dictionary[value_ids[k]] * x[row + offsets[k]] +
              dictionary[value_ids[k + 1]] * x[row + offsets[k + 1]];
          break;
        case 3:
          v = dictionary[value_ids[k]] * x[row + offsets[k]] +
              dictionary[value_ids[k + 1]] * x[row + offsets[k + 1]] +
              dictionary[value_ids[k + 2]] * x[row + offsets[k + 2]];
          break;
        case 4:
          v = (dictionary[value_ids[k]] * x[row + offsets[k]] +
               dictionary[value_ids[k + 1]] * x[row + offsets[k + 1]]) +
              (dictionary[value_ids[k + 2]] * x[row + offsets[k + 2]] +
               dictionary[value_ids[k + 3]] * x[row + offsets[k + 3]]);
          break;
        default: {
          double s0 = 0.0;
          double s1 = 0.0;
          std::uint8_t j = 0;
          for (; j + 2 <= length; j += 2) {
            s0 += dictionary[value_ids[k + j]] * x[row + offsets[k + j]];
            s1 += dictionary[value_ids[k + j + 1]] *
                  x[row + offsets[k + j + 1]];
          }
          if (j < length) {
            s0 += dictionary[value_ids[k + j]] * x[row + offsets[k + j]];
          }
          v = s0 + s1;
        }
      }
      out[row] = v;
      if (weight != 0.0) accum[row] += weight * v;
      delta = std::max(delta, std::abs(v - x[row]));
      k += length;
      ++row;
    }
  }
  return std::max(delta, lane_max(delta_v));
}

namespace {

/// Canonical per-length combine of per-entry product vectors, one row per
/// lane: the same association as FusedGatherPlan's scalar switch.
template <typename Entry>
inline __m256d combine_entries(std::uint32_t length, const Entry& entry) {
  __m256d v = entry(0);
  if (length == 2) {
    v = _mm256_add_pd(v, entry(1));
  } else if (length == 3) {
    v = _mm256_add_pd(_mm256_add_pd(v, entry(1)), entry(2));
  } else if (length == 4) {
    v = _mm256_add_pd(_mm256_add_pd(v, entry(1)),
                      _mm256_add_pd(entry(2), entry(3)));
  }
  return v;
}

/// Scalar remainder of a uniform run (< 4 rows), canonical order;
/// templated over double (identity promotion) or float (each product
/// promoted exactly to double).
template <typename Value>
inline double uniform_row_scalar(std::uint32_t length,
                                 const std::int16_t* offsets,
                                 const std::uint16_t* ids_t,
                                 std::size_t seg_rows, std::size_t r,
                                 const Value* dictionary, const Value* x,
                                 std::size_t row) {
  const auto term = [&](std::uint32_t e) {
    return static_cast<double>(dictionary[ids_t[e * seg_rows + r]]) *
           static_cast<double>(x[row + offsets[e]]);
  };
  switch (length) {
    case 1:
      return term(0);
    case 2:
      return term(0) + term(1);
    case 3:
      return term(0) + term(1) + term(2);
    default:
      return (term(0) + term(1)) + (term(2) + term(3));
  }
}

}  // namespace

double avx2_plan_uniform_rows(std::uint32_t length,
                              const std::int16_t* offsets,
                              const std::uint16_t* ids_t,
                              std::size_t seg_rows, std::size_t local_begin,
                              const double* dictionary, const double* x,
                              double* out, double* accum, double weight,
                              std::size_t row_begin, std::size_t row_end) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d weight_v = _mm256_set1_pd(weight);
  __m256d delta_v = _mm256_setzero_pd();
  double delta = 0.0;
  std::size_t row = row_begin;
  std::size_t r = local_begin;
  for (; row + 4 <= row_end; row += 4, r += 4) {
    const auto entry = [&](std::uint32_t e) {
      // Four consecutive rows of the run: dictionary ids are contiguous
      // in the transposed slab, x operands are contiguous because the
      // column offset is shared -- no gather needed for x.  Dictionary
      // lanes compose from scalar loads (cache-resident dictionary;
      // measured on par with vgatherdpd at 4 lanes).
      const std::uint16_t* ids = ids_t + e * seg_rows + r;
      const __m256d dv =
          _mm256_set_pd(dictionary[ids[3]], dictionary[ids[2]],
                        dictionary[ids[1]], dictionary[ids[0]]);
      const __m256d xv = _mm256_loadu_pd(x + row + offsets[e]);
      return _mm256_mul_pd(dv, xv);
    };
    const __m256d v = combine_entries(length, entry);
    _mm256_storeu_pd(out + row, v);
    if (weight != 0.0) {
      _mm256_storeu_pd(accum + row,
                       _mm256_add_pd(_mm256_loadu_pd(accum + row),
                                     _mm256_mul_pd(weight_v, v)));
    }
    delta_v = _mm256_max_pd(
        delta_v, _mm256_andnot_pd(
                     sign_mask, _mm256_sub_pd(v, _mm256_loadu_pd(x + row))));
  }
  for (; row < row_end; ++row, ++r) {
    const double v = uniform_row_scalar(length, offsets, ids_t, seg_rows, r,
                                        dictionary, x, row);
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - x[row]));
  }
  return std::max(delta, lane_max(delta_v));
}

double avx2_plan_uniform_rows_mixed(
    std::uint32_t length, const std::int16_t* offsets,
    const std::uint16_t* ids_t, std::size_t seg_rows,
    std::size_t local_begin, const float* dictionary, const float* x,
    float* out, double* accum, double weight, std::size_t row_begin,
    std::size_t row_end) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d weight_v = _mm256_set1_pd(weight);
  __m256d delta_v = _mm256_setzero_pd();
  double delta = 0.0;
  std::size_t row = row_begin;
  std::size_t r = local_begin;
  for (; row + 4 <= row_end; row += 4, r += 4) {
    const auto entry = [&](std::uint32_t e) {
      const std::uint16_t* ids = ids_t + e * seg_rows + r;
      // float32 operands halve the streamed bytes; promotion to double
      // before the multiply keeps every product exact.
      const __m128 dvf =
          _mm_set_ps(dictionary[ids[3]], dictionary[ids[2]],
                     dictionary[ids[1]], dictionary[ids[0]]);
      const __m256d dv = _mm256_cvtps_pd(dvf);
      const __m256d xv =
          _mm256_cvtps_pd(_mm_loadu_ps(x + row + offsets[e]));
      return _mm256_mul_pd(dv, xv);
    };
    const __m256d v = combine_entries(length, entry);
    _mm_storeu_ps(out + row, _mm256_cvtpd_ps(v));
    if (weight != 0.0) {
      _mm256_storeu_pd(accum + row,
                       _mm256_add_pd(_mm256_loadu_pd(accum + row),
                                     _mm256_mul_pd(weight_v, v)));
    }
    const __m256d xr = _mm256_cvtps_pd(_mm_loadu_ps(x + row));
    delta_v = _mm256_max_pd(
        delta_v, _mm256_andnot_pd(sign_mask, _mm256_sub_pd(v, xr)));
  }
  for (; row < row_end; ++row, ++r) {
    const double v = uniform_row_scalar(length, offsets, ids_t, seg_rows, r,
                                        dictionary, x, row);
    out[row] = static_cast<float>(v);
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - static_cast<double>(x[row])));
  }
  return std::max(delta, lane_max(delta_v));
}

}  // namespace kibamrm::linalg::kernels::detail

#endif  // KIBAMRM_HAVE_AVX2_TIER
