// Runtime-dispatched dense vector kernels with a deterministic reduction
// contract -- the shared substrate of every hot loop in the library.
//
// Four implementation tiers exist behind one entry point each: a portable
// scalar tier, an AVX2 tier, an AVX-512 tier (picked at runtime via CPUID,
// see common/cpu_features) and a mixed-precision throughput tier.  The
// three double tiers honour the same arithmetic contract, so a solver's
// result is bitwise identical whichever of them executes it:
//
//   * Element-wise kernels (axpy, scale) round each element independently;
//     scalar and SIMD agree bitwise by construction.  Both tiers are built
//     with FP contraction off -- a fused multiply-add would skip the
//     intermediate rounding the contract fixes.
//
//   * Reductions (dot, nrm2) follow a fixed-block pairwise-summation
//     order: the input splits into blocks of kBlockDoubles elements; each
//     block accumulates into sixteen interleaved lanes (element i feeds
//     lane i mod 16 -- four AVX2 registers of four lanes, enough chained
//     accumulators to hide the add latency), a four-lane cleanup group and
//     a sequential tail; lanes fold register-pairwise, block partials then
//     combine through a balanced pairwise tree.  The order depends only on
//     the element count, never on thread count or tier: the scalar tier
//     walks the same sixteen lanes the AVX2 registers hold.
//
//   * Sharded reductions expose the block partials directly (dot_blocks +
//     reduce_pairwise): threads fill disjoint block ranges of one partial
//     array and the caller reduces the whole array -- the result is the
//     single-thread dot() bit for bit, for every shard partition that
//     splits on block boundaries.
//
//   * The AVX-512 tier holds the same sixteen reduction lanes in two zmm
//     registers and folds them through the identical register-pairwise
//     tree, so it stays inside the bitwise contract; its masked-tail
//     loops only appear in the element-wise kernels, where per-element
//     rounding makes order irrelevant.
//
// The mixed tier (Dispatch::kMixed) is the exception by design: sparse
// row kernels that have a float32 path (FusedGatherPlan's row-offset
// layout) stream float operands and accumulate every product in double
// (float x float promotes exactly, so only the operand rounding is lost
// -- ~1e-7 relative per entry).  It is deterministic across threads and
// run-to-run, but NOT bitwise comparable to the double tiers; dense
// kernels under kMixed simply run the best double tier
// (double_tier()).  Solvers that opt in widen their sanity tolerances.
//
// The active tier is process-global: CPUID picks the default, the
// KIBAMRM_KERNELS environment variable ("scalar" / "avx2" / "avx512" /
// "mixed" / "auto") overrides it at startup, and set_dispatch() pins it
// programmatically (CLI --kernels, BackendOptions::kernel_dispatch,
// sanitizer CI).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace kibamrm::linalg::kernels {

/// Elements per reduction block of the fixed-block summation contract.
/// Part of the ABI of every stored result: changing it changes bits.
inline constexpr std::size_t kBlockDoubles = 256;

enum class Dispatch {
  kScalar = 0,  ///< portable tier, no ISA requirements
  kAvx2 = 1,    ///< AVX2 gather/vector tier (requires AVX2+FMA CPUID bits)
  kAvx512 = 2,  ///< AVX-512 tier (requires the F/DQ/VL/BW CPUID bits)
  kMixed = 3,   ///< float32-operand sparse rows, double accumulation
};

/// Best double-precision tier the executing CPU supports (cached CPUID
/// probe), before any override.  Never returns kMixed -- mixed precision
/// is a deliberate accuracy trade that must be requested explicitly.
Dispatch detected_dispatch();

/// Tier the kernels will actually run: the pinned override if one is set
/// (set_dispatch or KIBAMRM_KERNELS), else detected_dispatch().
Dispatch active_dispatch();

/// Double-precision tier a given dispatch executes the dense kernels
/// with: identity for the double tiers, detected_dispatch() for kMixed
/// (mixed precision only changes the sparse row kernels that have a
/// float path).
Dispatch double_tier(Dispatch dispatch);

/// Pins the active tier process-wide.  Pinning a SIMD tier the CPU lacks
/// throws InvalidArgument (use apply_dispatch for the forgiving CLI/env
/// behaviour).  kMixed is always accepted: its sparse kernels have a
/// scalar implementation and its dense kernels run the detected double
/// tier.  Thread-safe; takes effect on the next kernel call.
void set_dispatch(Dispatch dispatch);

/// Clears any pin (set_dispatch or KIBAMRM_KERNELS): back to CPUID.
void clear_dispatch();

/// "scalar" / "avx2" / "avx512" / "mixed".
std::string_view dispatch_name(Dispatch dispatch);

/// Parses "scalar" / "avx2" / "avx512" / "mixed" / "auto"; "auto" ->
/// nullopt (no pin), anything else throws InvalidArgument listing the
/// choices.
std::optional<Dispatch> parse_dispatch(std::string_view name);

/// Applies a BackendOptions/CLI-style dispatch string: "auto" clears any
/// earlier pin (back to CPUID), a tier name pins it via set_dispatch().
/// Unlike set_dispatch, a SIMD tier the CPU cannot run does not throw: it
/// falls back to the best supported tier and says so once on stderr --
/// one build's flags/scripts stay portable across heterogeneous fleets.
void apply_dispatch(std::string_view name);

/// Whether the SIMD tiers also route the sparse row kernels
/// (FusedGatherPlan, CsrMatrix::multiply_range) through the legacy
/// four-rows-per-group *within-row* gather implementations.  Default
/// OFF: hardware vgatherdpd was measured 1.1-1.4x *slower* than the
/// tuned scalar per-length switch for that access pattern on every
/// microarchitecture tested (the row kernels are load-bound, and a
/// gather's fixed uop cost exceeds four indexed scalar loads there).
/// This knob is now largely superseded by the uniform-segment kernels,
/// which vectorise *across* rows on reordered chains (lane = row,
/// contiguous vector loads) and dispatch automatically whenever
/// segments exist and a SIMD tier is active -- no flag needed.  The
/// grouped kernels stay implemented, parity-tested and benchmarked for
/// chains that never produce segments: set_gather_grouping(true) or
/// KIBAMRM_SIMD_GATHER=on.  Either way the bits are identical; this
/// knob only selects machine code.
bool gather_grouping();
void set_gather_grouping(bool enabled);

/// Blocks covering n elements: ceil(n / kBlockDoubles) (0 for n == 0).
std::size_t block_count(std::size_t n);

/// Blocked pairwise dot product (the contract above).
double dot(const double* a, const double* b, std::size_t n);

/// sqrt(dot(v, v, n)) -- the Euclidean norm under the same contract.
double nrm2(const double* v, std::size_t n);

/// y[i] += alpha * x[i] (element-wise; bitwise tier-independent).
void axpy(double alpha, const double* x, double* y, std::size_t n);

/// v[i] *= alpha (element-wise; bitwise tier-independent).
void scale(double* v, double alpha, std::size_t n);

/// Writes the block partials partials[b] for b in [block_begin, block_end)
/// of the dot product over vectors of n elements.  Disjoint block ranges
/// touch disjoint partials entries, so ranges shard across threads freely;
/// reduce_pairwise over all block_count(n) partials reproduces dot()
/// bit for bit.
void dot_blocks(const double* a, const double* b, std::size_t n,
                std::size_t block_begin, std::size_t block_end,
                double* partials);

/// Balanced pairwise tree over partials[0..count): the deterministic
/// combine of the sharded reduction contract (depends on count only).
double reduce_pairwise(const double* partials, std::size_t count);

}  // namespace kibamrm::linalg::kernels
