#include "kibamrm/stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {
  KIBAMRM_REQUIRE(!samples_.empty(), "empirical distribution needs samples");
  std::sort(samples_.begin(), samples_.end());
  for (double x : samples_) mean_ += x;
  mean_ /= static_cast<double>(samples_.size());
  for (double x : samples_) m2_ += (x - mean_) * (x - mean_);
}

double EmpiricalDistribution::cdf(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::quantile(double p) const {
  KIBAMRM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile level must lie in [0,1]");
  const std::size_t n = samples_.size();
  if (n == 1) return samples_[0];
  const double h = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = lo + 1 >= n ? n - 1 : lo + 1;
  const double frac = h - std::floor(h);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double EmpiricalDistribution::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double EmpiricalDistribution::stddev() const { return std::sqrt(variance()); }

double EmpiricalDistribution::mean_ci_halfwidth(double confidence) const {
  KIBAMRM_REQUIRE(confidence > 0.0 && confidence < 1.0,
                  "confidence level must lie in (0,1)");
  // Inverse normal CDF via the Acklam rational approximation (|err|<1e-9),
  // good far beyond what a plotting CI needs.
  const double p = 0.5 + confidence / 2.0;
  const double q = p - 0.5;
  double z;
  // Central region |q| <= 0.425 covers every practical confidence level.
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    z = q *
        (((((((2509.0809287301226727 * r + 33430.575583588128105) * r +
              67265.770927008700853) *
                 r +
             45921.953931549871457) *
                r +
            13731.693765509461125) *
               r +
           1971.5909503065514427) *
              r +
          133.14166789178437745) *
             r +
         3.387132872796366608) /
        (((((((5226.495278852545703 * r + 28729.085735721942674) * r +
              39307.89580009271061) *
                 r +
             21213.794301586595867) *
                r +
            5394.1960214247511077) *
               r +
           687.1870074920579083) *
              r +
          42.313330701600911252) *
             r +
         1.0);
  } else {
    double r = p < 0.5 ? p : 1.0 - p;
    r = std::sqrt(-std::log(r));
    if (r <= 5.0) {
      r -= 1.6;
      z = (((((((7.7454501427834140764e-4 * r + 0.0227238449892691845833) *
                    r +
                0.24178072517745061177) *
                   r +
               1.27045825245236838258) *
                  r +
              3.64784832476320460504) *
                 r +
             5.7694972214606914055) *
                r +
            4.6303378461565452959) *
               r +
           1.42343711074968357734) /
          (((((((1.05075007164441684324e-9 * r + 5.475938084995344946e-4) *
                    r +
                0.0151986665636164571966) *
                   r +
               0.14810397642748007459) *
                  r +
              0.68976733498510000455) *
                 r +
             1.6763848301838038494) *
                r +
            2.05319162663775882187) *
               r +
           1.0);
    } else {
      r -= 5.0;
      z = (((((((2.01033439929228813265e-7 * r +
                 2.71155556874348757815e-5) *
                    r +
                0.0012426609473880784386) *
                   r +
               0.026532189526576123093) *
                  r +
              0.29656057182850489123) *
                 r +
             1.7848265399172913358) *
                r +
            5.4637849111641143699) *
               r +
           6.6579046435011037772) /
          (((((((2.04426310338993978564e-15 * r +
                 1.4215117583164458887e-7) *
                    r +
                1.8463183175100546818e-5) *
                   r +
               7.868691311456132591e-4) *
                  r +
              0.0148753612908506148525) *
                 r +
             0.13692988092273580531) *
                r +
            0.59983220655588793769) *
               r +
           1.0);
    }
    if (p < 0.5) z = -z;
  }
  return z * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double ks_distance(const EmpiricalDistribution& a,
                   const EmpiricalDistribution& b) {
  double worst = 0.0;
  for (double x : a.sorted_samples()) {
    worst = std::max(worst, std::abs(a.cdf(x) - b.cdf(x)));
  }
  for (double x : b.sorted_samples()) {
    worst = std::max(worst, std::abs(a.cdf(x) - b.cdf(x)));
  }
  return worst;
}

double ks_distance_to_cdf(const EmpiricalDistribution& a,
                          const std::vector<double>& grid,
                          const std::vector<double>& cdf_values) {
  KIBAMRM_REQUIRE(grid.size() == cdf_values.size(),
                  "ks_distance_to_cdf: grid/value size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    worst = std::max(worst, std::abs(a.cdf(grid[i]) - cdf_values[i]));
  }
  return worst;
}

}  // namespace kibamrm::stats
