// Empirical distributions from Monte-Carlo samples.
//
// The paper's "simulation" curves are empirical CDFs over 1000 independent
// lifetime samples (Sec. 6.1).  This module provides the ECDF, sample
// moments, quantiles, and a normal-approximation confidence interval for
// the mean.
#pragma once

#include <cstddef>
#include <vector>

namespace kibamrm::stats {

class EmpiricalDistribution {
 public:
  /// Takes ownership of the samples; sorts them once.
  explicit EmpiricalDistribution(std::vector<double> samples);

  std::size_t size() const { return samples_.size(); }
  const std::vector<double>& sorted_samples() const { return samples_; }

  /// Fraction of samples <= x.
  double cdf(double x) const;

  /// p-quantile (0 <= p <= 1) with linear interpolation between order
  /// statistics (type-7, the R default).
  double quantile(double p) const;

  double min() const { return samples_.front(); }
  double max() const { return samples_.back(); }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for a single sample.
  double variance() const;
  double stddev() const;

  /// Half-width of the normal-approximation confidence interval for the
  /// mean at the given level (default 95%).
  double mean_ci_halfwidth(double confidence = 0.95) const;

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
};

/// Kolmogorov-Smirnov distance sup_x |F1(x) - F2(x)| between two empirical
/// distributions (used to compare simulation against the approximation).
double ks_distance(const EmpiricalDistribution& a,
                   const EmpiricalDistribution& b);

/// KS distance between an ECDF and an arbitrary CDF callable, evaluated at
/// the sample points (both one-sided gaps per sample).
double ks_distance_to_cdf(const EmpiricalDistribution& a,
                          const std::vector<double>& grid,
                          const std::vector<double>& cdf_values);

}  // namespace kibamrm::stats
