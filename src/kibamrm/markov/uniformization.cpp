#include "kibamrm/markov/uniformization.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::markov {

TransientSolver::TransientSolver(const Ctmc& chain, TransientOptions options)
    : chain_(chain),
      options_(options),
      p_(1, 1),
      rate_(options.uniformization_rate) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
  if (rate_ == 0.0) {
    rate_ = 1.02 * chain_.max_exit_rate();
    if (rate_ == 0.0) rate_ = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate_ * (1.0 + 1e-12) >= chain_.max_exit_rate(),
                  "uniformization rate below maximal exit rate");
  p_ = chain_.generator().uniformized(rate_);

  // Partition rows once: absorbing states uniformise to exact unit-diagonal
  // rows, which the iteration kernel handles without touching the CSR
  // structure (see CsrMatrix::left_multiply_partitioned).
  identity_rows_ = p_.identity_rows();
  active_rows_.reserve(p_.rows() - identity_rows_.size());
  std::size_t next_identity = 0;
  for (std::size_t row = 0; row < p_.rows(); ++row) {
    if (next_identity < identity_rows_.size() &&
        identity_rows_[next_identity] == row) {
      ++next_identity;
    } else {
      active_rows_.push_back(static_cast<std::uint32_t>(row));
    }
  }
}

std::vector<std::vector<double>> TransientSolver::solve(
    const std::vector<double>& initial, const std::vector<double>& times,
    const std::function<void(std::size_t, double, const std::vector<double>&)>&
        on_point) {
  KIBAMRM_REQUIRE(initial.size() == chain_.state_count(),
                  "initial distribution has wrong dimension");
  KIBAMRM_REQUIRE(linalg::is_probability_vector(initial, 1e-6),
                  "initial vector is not a probability distribution");
  KIBAMRM_REQUIRE(std::is_sorted(times.begin(), times.end()),
                  "time points must be sorted ascending");
  KIBAMRM_REQUIRE(times.empty() || times.front() >= 0.0,
                  "time points must be non-negative");

  stats_ = TransientStats{};
  stats_.uniformization_rate = rate_;
  stats_.time_points = times.size();

  std::vector<std::vector<double>> results;
  results.reserve(times.size());

  // power_ holds pi(t_k) P^n during an increment; it is (re)filled from
  // `current` at each increment, so only the other scratch needs sizing.
  std::vector<double> current = initial;   // pi(t_k)
  next_.assign(initial.size(), 0.0);
  accum_.assign(initial.size(), 0.0);
  double current_time = 0.0;

  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate_ * dt;
      const PoissonWindow window = fox_glynn(lambda, options_.epsilon);
      linalg::fill(accum_, 0.0);
      power_ = current;
      // n = 0 term.
      if (window.left == 0) {
        linalg::axpy(window.weight(0), power_, accum_);
      }
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        p_.left_multiply_partitioned(power_, next_, active_rows_,
                                     identity_rows_);
        power_.swap(next_);
        ++stats_.iterations;
        if (n >= window.left) {
          linalg::axpy(window.weight(n), power_, accum_);
        }
      }
      current.swap(accum_);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_results) results.push_back(current);
    if (on_point) on_point(idx, times[idx], current);
  }
  return results;
}

std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double time,
                                           TransientOptions options) {
  TransientSolver solver(chain, options);
  return solver.solve(initial, {time}).front();
}

}  // namespace kibamrm::markov
