#include "kibamrm/markov/uniformization.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::markov {

TransientSolver::TransientSolver(const Ctmc& chain, TransientOptions options)
    : chain_(chain),
      options_(options),
      p_(1, 1),
      fused_pt_(1, 1),
      rate_(options.uniformization_rate) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
  if (rate_ == 0.0) {
    rate_ = 1.02 * chain_.max_exit_rate();
    if (rate_ == 0.0) rate_ = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate_ * (1.0 + 1e-12) >= chain_.max_exit_rate(),
                  "uniformization rate below maximal exit rate");
  p_ = chain_.generator().uniformized(rate_);

  if (options_.fused_kernels) {
    // The compacted gather structures depend on the initial distribution
    // and are built lazily by prepare_fused() on the first solve.
    return;
  }

  // Partition rows once: absorbing states uniformise to exact unit-diagonal
  // rows, which the baseline scatter kernel handles without touching the
  // CSR structure (see CsrMatrix::left_multiply_partitioned).
  identity_rows_ = p_.identity_rows();
  active_rows_.reserve(p_.rows() - identity_rows_.size());
  std::size_t next_identity = 0;
  for (std::size_t row = 0; row < p_.rows(); ++row) {
    if (next_identity < identity_rows_.size() &&
        identity_rows_[next_identity] == row) {
      ++next_identity;
    } else {
      active_rows_.push_back(static_cast<std::uint32_t>(row));
    }
  }
}

void TransientSolver::prepare_fused(const std::vector<double>& initial) {
  // The closure of a subset is a subset of the closure, so the cached
  // machinery stays valid whenever the new support is inside it -- the
  // common case for solvers reused across initials of the same chain.
  bool covered = !reachable_.empty();
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
      if (covered && !reachable_mask_[i]) covered = false;
    }
  }
  if (covered) return;
  // Grow monotonically so earlier initials stay covered too.
  seeds.insert(seeds.end(), reachable_.begin(), reachable_.end());
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  reachable_ = p_.reachable_rows(seeds);
  reachable_mask_.assign(p_.rows(), 0);
  for (const std::uint32_t row : reachable_) reachable_mask_[row] = 1;
  fused_pt_ = p_.transposed_submatrix(reachable_);
  fused_nonzeros_ = fused_pt_.nonzeros();
  fused_structure_ = linalg::structure_stats(fused_pt_);
  gather_plan_ = linalg::FusedGatherPlan::build(fused_pt_);
  if (gather_plan_) {
    fused_pt_ = linalg::CsrMatrix(1, 1);  // packed layout replaces the CSR
  }
}

std::vector<std::vector<double>> TransientSolver::solve(
    const std::vector<double>& initial, const std::vector<double>& times,
    const std::function<void(std::size_t, double, const std::vector<double>&)>&
        on_point) {
  KIBAMRM_REQUIRE(initial.size() == chain_.state_count(),
                  "initial distribution has wrong dimension");
  KIBAMRM_REQUIRE(linalg::is_probability_vector(initial, 1e-6),
                  "initial vector is not a probability distribution");
  KIBAMRM_REQUIRE(std::is_sorted(times.begin(), times.end()),
                  "time points must be sorted ascending");
  KIBAMRM_REQUIRE(times.empty() || times.front() >= 0.0,
                  "time points must be non-negative");

  stats_ = TransientStats{};
  stats_.uniformization_rate = rate_;
  stats_.time_points = times.size();
  const std::uint64_t windows_computed_before = plan_.windows_computed();
  const std::uint64_t windows_reused_before = plan_.windows_reused();

  const bool fused = options_.fused_kernels;
  if (fused) prepare_fused(initial);
  // The mixed tier applies only where a float32 kernel exists (the
  // row-offset gather plan); chains on the CSR or column-delta fallback
  // silently run the double kernels -- "mixed" is a throughput hint, not
  // a semantic switch.
  const bool mixed =
      fused && gather_plan_ && gather_plan_->mixed_supported() &&
      linalg::kernels::active_dispatch() == linalg::kernels::Dispatch::kMixed;
  const bool detect = options_.steady_state_detection && fused;
  const double threshold = options_.steady_state_threshold > 0.0
                               ? options_.steady_state_threshold
                               : options_.epsilon / 2.0;

  std::vector<std::vector<double>> results;
  results.reserve(times.size());

  // The fused loop runs entirely in the compacted reachable space; the
  // baseline loop in the full space.
  stats_.active_states = fused ? reachable_.size() : initial.size();
  stats_.active_nonzeros = fused ? fused_nonzeros_ : p_.nonzeros();
  if (fused) {
    stats_.matrix_bandwidth = fused_structure_.bandwidth;
    stats_.groupable_rows = fused_structure_.groupable_rows;
    stats_.longest_uniform_run = fused_structure_.longest_uniform_run;
    stats_.diagonal_rows = fused_structure_.diagonal_rows;
    stats_.longest_diagonal_run = fused_structure_.longest_diagonal_run;
  }

  // power_ holds pi(t_k) P^n during an increment; it is (re)filled from
  // `current` at each increment, so only the other scratch needs sizing.
  std::vector<double> current;  // pi(t_k), in loop space
  if (fused) {
    current.resize(reachable_.size());
    for (std::size_t i = 0; i < reachable_.size(); ++i) {
      current[i] = initial[reachable_[i]];
    }
    // Emission buffer: unreachable entries are zero forever, so only the
    // compacted entries are ever rewritten.
    full_point_.assign(initial.size(), 0.0);
  } else {
    current = initial;
  }
  next_.assign(current.size(), 0.0);
  accum_.assign(current.size(), 0.0);
  double current_time = 0.0;

  // Expands the compacted loop vector into full_point_ for results and
  // callbacks; pass-through in baseline mode.
  const auto emit_view =
      [&](const std::vector<double>& point) -> const std::vector<double>& {
    if (!fused) return point;
    for (std::size_t i = 0; i < reachable_.size(); ++i) {
      full_point_[reachable_[i]] = point[i];
    }
    return full_point_;
  };

  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate_ * dt;
      const std::shared_ptr<const PoissonWindow> window_ptr =
          plan_.window(lambda, options_.epsilon);
      const PoissonWindow& window = *window_ptr;
      linalg::fill(accum_, 0.0);
      if (mixed) {
        power_f_.resize(current.size());
        next_f_.resize(current.size());
        for (std::size_t i = 0; i < current.size(); ++i) {
          power_f_[i] = static_cast<float>(current[i]);
        }
      } else {
        power_ = current;
      }
      // n = 0 term (current == pi(t_k) exactly; in mixed mode the double
      // vector feeds the accumulator so the n = 0 term is full precision).
      if (window.left == 0) {
        linalg::axpy(window.weight(0), current, accum_);
      }
      std::uint64_t calm_steps = 0;  // consecutive steps inside the budget
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        const double weight = n >= window.left ? window.weight(n) : 0.0;
        double delta = 0.0;
        if (mixed) {
          delta = gather_plan_->multiply_fused_range_mixed(
              power_f_, next_f_, accum_, weight, 0, gather_plan_->rows());
          power_f_.swap(next_f_);
        } else if (fused) {
          delta = gather_plan_
                      ? gather_plan_->multiply_fused_range(
                            power_, next_, accum_, weight, 0,
                            gather_plan_->rows())
                      : fused_pt_.multiply_fused_range(power_, next_, accum_,
                                                       weight, 0,
                                                       fused_pt_.rows());
          power_.swap(next_);
        } else {
          p_.left_multiply_partitioned(power_, next_, active_rows_,
                                       identity_rows_);
          power_.swap(next_);
          if (weight != 0.0) {
            linalg::axpy(weight, power_, accum_);
          }
        }
        ++stats_.iterations;
        // Steady-state / absorption short circuit: once the per-step
        // change can no longer move the result beyond the budget --
        // (right - n) * delta <= threshold, i.e. a triangle inequality
        // over the remaining steps assuming the per-step changes keep
        // shrinking -- the whole residual Poisson tail collapses onto the
        // converged vector.  The non-amplification assumption is the
        // classic steady-state-detection heuristic (a uniformised P is
        // row-stochastic, which does not contract the sup norm in
        // general); two consecutive in-budget steps guard against a
        // transient lull, the bound is strictly more conservative than
        // the usual absolute cut delta <= eps/8 (which measurably
        // overruns the 10 eps agreement budget on the Fig. 8 chains),
        // and the detection-on/off agreement tests pin the accuracy.
        // Keep this block in lockstep with the parallel backend
        // (engine/parallel_backend.cpp) -- the serial/parallel bitwise
        // and iteration-equality tests fail on any divergence.
        if (detect && n < window.right &&
            static_cast<double>(window.right - n) * delta <= threshold) {
          if (++calm_steps >= 2) {
            double residual = 0.0;  // remaining tail mass, summed directly
            for (std::uint64_t m = n + 1; m <= window.right; ++m) {
              residual += window.weight(m);
            }
            if (residual > 0.0) {
              if (mixed) {
                for (std::size_t i = 0; i < accum_.size(); ++i) {
                  accum_[i] +=
                      residual * static_cast<double>(power_f_[i]);
                }
              } else {
                linalg::axpy(residual, power_, accum_);
              }
            }
            stats_.iterations_saved += window.right - n;
            ++stats_.steady_state_hits;
            break;
          }
        } else {
          calm_steps = 0;
        }
      }
      current.swap(accum_);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_results || on_point) {
      const std::vector<double>& point = emit_view(current);
      if (options_.collect_results) results.push_back(point);
      if (on_point) on_point(idx, times[idx], point);
    }
  }
  stats_.windows_computed = plan_.windows_computed() - windows_computed_before;
  stats_.windows_reused = plan_.windows_reused() - windows_reused_before;
  return results;
}

std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double time,
                                           TransientOptions options) {
  TransientSolver solver(chain, options);
  return solver.solve(initial, {time}).front();
}

}  // namespace kibamrm::markov
