// Phase-type distributions.
//
// The Markovian approximation of Sec. 5 replaces the battery lifetime by the
// absorption time of a finite CTMC, i.e. by a phase-type (PH) distribution.
// This module provides a small PH toolkit: construction from an initial
// vector and sub-generator, CDF/pdf/mean evaluation, Erlang distributions as
// the special case used by the on/off workload (Sec. 4.3), and sampling.
//
// The CDF is evaluated with the dense matrix exponential for small
// representations and is primarily used in tests, to cross-check the sparse
// uniformisation machinery against an independent implementation.
#pragma once

#include <vector>

#include "kibamrm/common/random.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::markov {

/// Continuous phase-type distribution PH(alpha, T) where T is the
/// sub-generator over transient states and absorption happens at rate
/// t0 = -T 1 (row deficit).
class PhaseType {
 public:
  /// alpha: initial probabilities over transient states (may sum to < 1;
  /// the deficit is an atom at 0).  T: sub-generator with non-negative
  /// off-diagonals and non-positive row sums.
  PhaseType(std::vector<double> alpha, linalg::DenseReal sub_generator);

  std::size_t phases() const { return alpha_.size(); }

  /// Pr{X <= t}; 1 - alpha * exp(T t) * 1.
  double cdf(double t) const;

  /// Density at t: alpha * exp(T t) * t0.
  double pdf(double t) const;

  /// Mean: -alpha T^{-1} 1.
  double mean() const;

  /// Samples one absorption time by simulating the phase process.
  double sample(common::RandomStream& rng) const;

  const std::vector<double>& alpha() const { return alpha_; }
  const linalg::DenseReal& sub_generator() const { return t_; }

  /// Erlang-k with the given rate as a PH distribution.
  static PhaseType erlang(int k, double rate);

  /// Exponential with the given rate as a PH distribution.
  static PhaseType exponential(double rate);

 private:
  std::vector<double> alpha_;
  linalg::DenseReal t_;
  std::vector<double> exit_;  // absorption rates t0
};

/// Erlang-k CDF evaluated directly through the Poisson tail identity
/// Pr{Erlang_k(rate) <= t} = Pr{Poisson(rate*t) >= k}; numerically robust
/// for the very large k that appear in Sec. 6.1 (k = 15000).
double erlang_cdf(int k, double rate, double t);

/// Erlang-k mean, k / rate.
double erlang_mean(int k, double rate);

/// Erlang-k variance, k / rate^2.
double erlang_variance(int k, double rate);

}  // namespace kibamrm::markov
