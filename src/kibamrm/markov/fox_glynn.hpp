// Truncated Poisson weights for uniformisation (Fox & Glynn, 1988).
//
// Uniformisation expresses the transient distribution of a CTMC as a
// Poisson-weighted sum of DTMC powers:
//     pi(t) = sum_n  Pois(q t; n) * pi(0) P^n.
// This module computes the truncation window [left, right] and the weights
// Pois(lambda; n), n in [left, right], such that the dropped probability
// mass is below a caller-supplied epsilon.
//
// The implementation recurses outward from the mode (where the pmf peaks) in
// scaled arithmetic, then normalises; this avoids the catastrophic underflow
// of starting the classic recursion at e^{-lambda} for lambda beyond ~700.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "kibamrm/common/thread_annotations.hpp"

namespace kibamrm::markov {

/// Truncated Poisson distribution: weights[i] approximates
/// Pois(lambda; left + i), and sum(weights) == 1 after normalisation.
struct PoissonWindow {
  std::uint64_t left = 0;
  std::uint64_t right = 0;
  std::vector<double> weights;

  std::size_t size() const { return weights.size(); }

  /// Weight of n, or 0 outside the window.
  double weight(std::uint64_t n) const {
    if (n < left || n > right) return 0.0;
    return weights[static_cast<std::size_t>(n - left)];
  }
};

/// Computes the truncation window for Poisson(lambda) with total dropped
/// mass at most epsilon (split between both tails).  lambda == 0 yields the
/// degenerate window {0} with weight 1.  Throws InvalidArgument for negative
/// lambda or epsilon outside (0, 1).
PoissonWindow fox_glynn(double lambda, double epsilon);

/// Memoised Fox-Glynn windows, keyed by (lambda, epsilon).
///
/// The incremental transient solvers compute one window per time increment;
/// on the uniform time grids every curve driver uses, all increments share
/// (up to round-off in t_{k+1} - t_k) a single lambda, so the window is
/// worth computing exactly once per curve.  Lambdas within a relative
/// 1e-9 of a cached entry are treated as equal -- uniform_grid() produces
/// increments that differ only in the last few ulps, and a Poisson window
/// is insensitive to lambda perturbations at that scale (it shifts by far
/// less than one term).  Epsilons must match exactly.
///
/// Entries are kept most-recently-used first and the cache is capped, so a
/// solver hammering one or two lambdas stays O(1) per lookup while a sweep
/// over many horizons cannot grow the cache without bound.
class UniformizationPlan {
 public:
  /// `lambda_slack` is the relative lambda tolerance for cache hits: the
  /// default suits the transient solvers' uniform grids (see above).
  /// Pass 0 for exact matching when the consumer's result is sensitive
  /// to lambda at the epsilon scale (poisson_tail does).
  explicit UniformizationPlan(std::size_t capacity = 16,
                              double lambda_slack = 1e-9);

  /// The Fox-Glynn window for (lambda, epsilon): cached when one matches,
  /// computed and inserted otherwise.  The shared_ptr *pins* the window:
  /// it stays valid for as long as the caller holds it, even after the
  /// LRU evicts the entry.  (The previous reference-returning API dangled
  /// as soon as `capacity` distinct lookups pushed the entry out -- a held
  /// window silently read freed weights.)
  std::shared_ptr<const PoissonWindow> window(double lambda, double epsilon);

  /// Lifetime counters (never reset by eviction); callers that want
  /// per-solve numbers difference them around the solve.
  std::uint64_t windows_computed() const { return computed_; }
  std::uint64_t windows_reused() const { return reused_; }
  std::size_t cached_windows() const { return entries_.size(); }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    double lambda;
    double epsilon;
    std::shared_ptr<const PoissonWindow> window;
  };

  // KIBAMRM_EXTERNALLY_SYNCHRONIZED: every plan is single-owner -- a
  // member of one solver/backend queried from its solve thread, or the
  // poisson_tail thread_local.  window() splices the LRU list on every
  // hit, so a *shared* plan would race on reads too; sharing one across
  // threads (the ROADMAP daemon's cross-request cache) requires a
  // Mutex-guarded wrapper, not this class.  The returned shared_ptr is
  // safe to hand across threads once obtained (the pointee is const).
  std::list<Entry> entries_ KIBAMRM_EXTERNALLY_SYNCHRONIZED(
      "single-owner cache; LRU splice mutates on reads");
  std::size_t capacity_;
  double lambda_slack_;
  std::uint64_t computed_ = 0;
  std::uint64_t reused_ = 0;
};

/// Poisson pmf Pois(lambda; n), computed in log space (accurate for large
/// lambda and n; used for cross-checking the window in tests).
double poisson_pmf(double lambda, std::uint64_t n);

/// Upper tail Pr{Poisson(lambda) >= n}.  This equals the Erlang-n CDF at
/// lambda = rate * t and is used to validate the Erlang workload models.
/// The truncation window is served from a per-thread UniformizationPlan
/// (sweeps evaluate many n at one lambda; recomputing the window per call
/// dominated the cost), at the caller's `epsilon` instead of the previous
/// hard-coded 1e-16 (still the default).
double poisson_tail(double lambda, std::uint64_t n, double epsilon = 1e-16);

}  // namespace kibamrm::markov
