// Continuous-time Markov chains: generator validation and basic queries.
//
// A Ctmc wraps a sparse infinitesimal generator Q (Sec. 4.1 of the paper):
// off-diagonal entries q_ij >= 0 are transition rates, diagonal entries are
// the negated exit rates, and every row sums to zero.  Absorbing states have
// an all-zero row.  Construction validates all of this once so the solvers
// can assume a well-formed chain.
#pragma once

#include <cstddef>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::markov {

class Ctmc {
 public:
  /// Validates and adopts a generator matrix.
  /// Throws ModelError if Q is not square, has a negative off-diagonal
  /// entry, a positive diagonal entry, or a row sum away from zero by more
  /// than `row_sum_tolerance` (relative to the row's exit rate).
  explicit Ctmc(linalg::CsrMatrix generator, double row_sum_tolerance = 1e-9);

  std::size_t state_count() const { return generator_.rows(); }
  const linalg::CsrMatrix& generator() const { return generator_; }

  /// Exit rate of a state, -Q(i,i).
  double exit_rate(std::size_t state) const;

  /// Maximal exit rate over all states (lower bound for uniformisation).
  double max_exit_rate() const { return max_exit_rate_; }

  /// True iff state i has an all-zero row (no outgoing transitions).
  bool is_absorbing(std::size_t state) const;

  /// Dense copy of the generator (for the small-matrix exact solvers).
  linalg::DenseReal dense_generator() const;

 private:
  linalg::CsrMatrix generator_;
  double max_exit_rate_ = 0.0;
};

/// Builds a CTMC from a dense rate specification: `rates[i][j]` is the
/// transition rate i -> j (diagonal ignored); diagonals are derived.
/// Convenience for the small hand-written workload models and tests.
Ctmc ctmc_from_rates(const std::vector<std::vector<double>>& rates);

}  // namespace kibamrm::markov
