#include "kibamrm/markov/fox_glynn.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::markov {

namespace {

/// ln(n!) via lgamma.
double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

}  // namespace

double poisson_pmf(double lambda, std::uint64_t n) {
  KIBAMRM_REQUIRE(lambda >= 0.0, "poisson_pmf: lambda must be >= 0");
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double log_p = -lambda +
                       static_cast<double>(n) * std::log(lambda) -
                       log_factorial(n);
  return std::exp(log_p);
}

double poisson_tail(double lambda, std::uint64_t n, double epsilon) {
  KIBAMRM_REQUIRE(lambda >= 0.0, "poisson_tail: lambda must be >= 0");
  if (n == 0) return 1.0;
  if (lambda == 0.0) return 0.0;
  // The Erlang validation sweeps evaluate many thresholds n at one lambda;
  // a per-thread plan cache turns the repeated Fox-Glynn recursion into
  // one window per (lambda, epsilon).  thread_local keeps the fast path
  // lock-free under the batched solvers.  Lambda matching is *exact*
  // (slack 0): the tail is lambda-sensitive at the pmf scale, so the
  // grid-reuse slack of the transient solvers would hand back a
  // neighbouring lambda's tail, far outside the requested epsilon.
  static thread_local UniformizationPlan windows(16, 0.0);
  const std::shared_ptr<const PoissonWindow> window =
      windows.window(lambda, epsilon);
  double below = 0.0;  // Pr{N < n}
  double above = 0.0;  // Pr{N >= n}
  for (std::uint64_t m = window->left; m <= window->right; ++m) {
    const double w = window->weight(m);
    if (m < n) {
      below += w;
    } else {
      above += w;
    }
  }
  // Both tails of the window were dropped symmetrically; pick the smaller
  // accumulated side to avoid cancellation.
  return above <= below ? above : 1.0 - below;
}

PoissonWindow fox_glynn(double lambda, double epsilon) {
  KIBAMRM_REQUIRE(lambda >= 0.0, "fox_glynn: lambda must be >= 0");
  KIBAMRM_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
                  "fox_glynn: epsilon must lie in (0,1)");

  PoissonWindow window;
  if (lambda == 0.0) {
    window.left = window.right = 0;
    window.weights = {1.0};
    return window;
  }

  const auto mode = static_cast<std::uint64_t>(std::floor(lambda));

  // Unnormalised weights relative to the mode (w[mode] = 1).  Recursion:
  //   w(n-1) = w(n) * n / lambda          (downward)
  //   w(n+1) = w(n) * lambda / (n + 1)    (upward)
  // Terms decay monotonically away from the mode, so we extend each side
  // until the running term is negligible relative to the accumulated sum.
  std::vector<double> down;  // weights at mode-1, mode-2, ...
  std::vector<double> up;    // weights at mode+1, mode+2, ...
  const double tail_cut = epsilon / 8.0;  // conservative per-side cut

  double total = 1.0;
  double w = 1.0;
  for (std::uint64_t n = mode; n > 0; --n) {
    w *= static_cast<double>(n) / lambda;
    down.push_back(w);
    total += w;
    // Geometric-style bound: remaining tail < w * n / (lambda? ) -- use the
    // simple criterion "term small vs running total" with a safety factor on
    // the number of potentially remaining terms.
    if (w < tail_cut * total / (static_cast<double>(n) + 1.0)) break;
  }
  w = 1.0;
  for (std::uint64_t n = mode + 1;; ++n) {
    w *= lambda / static_cast<double>(n);
    up.push_back(w);
    total += w;
    if (static_cast<double>(n + 1) > lambda) {
      // Terms now decay geometrically with ratio rho < 1; the remaining
      // upper tail is bounded by w * rho / (1 - rho).
      const double rho = lambda / static_cast<double>(n + 1);
      if (w * rho / (1.0 - rho) < tail_cut * total) break;
    }
    if (w < 1e-300) break;  // hard underflow guard
  }

  window.left = mode - down.size();
  window.right = mode + up.size();
  window.weights.resize(down.size() + 1 + up.size());
  for (std::size_t i = 0; i < down.size(); ++i) {
    window.weights[down.size() - 1 - i] = down[i];
  }
  window.weights[down.size()] = 1.0;
  for (std::size_t i = 0; i < up.size(); ++i) {
    window.weights[down.size() + 1 + i] = up[i];
  }

  // Normalise so the window sums to exactly 1 (this also absorbs the true
  // normalisation constant e^{-lambda} lambda^mode / mode!).
  const double inv_total = 1.0 / total;
  for (double& weight : window.weights) weight *= inv_total;
  return window;
}

UniformizationPlan::UniformizationPlan(std::size_t capacity,
                                       double lambda_slack)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      lambda_slack_(lambda_slack) {
  KIBAMRM_REQUIRE(lambda_slack_ >= 0.0,
                  "UniformizationPlan: lambda slack must be >= 0");
}

std::shared_ptr<const PoissonWindow> UniformizationPlan::window(
    double lambda, double epsilon) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->epsilon == epsilon &&
        std::abs(it->lambda - lambda) <=
            lambda_slack_ * std::max(1.0, std::abs(it->lambda))) {
      ++reused_;
      entries_.splice(entries_.begin(), entries_, it);  // move to MRU slot
      return entries_.front().window;
    }
  }
  ++computed_;
  // shared ownership pins the window for callers that outlive the entry:
  // eviction below (and clear()) only drops the cache's reference.
  entries_.push_front({lambda, epsilon,
                       std::make_shared<const PoissonWindow>(
                           fox_glynn(lambda, epsilon))});
  if (entries_.size() > capacity_) entries_.pop_back();
  return entries_.front().window;
}

}  // namespace kibamrm::markov
