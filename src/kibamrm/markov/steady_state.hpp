// Steady-state distributions of irreducible CTMCs.
//
// Solves pi Q = 0, sum(pi) = 1 by Gauss-Seidel sweeps over the normal
// equations pi_i = (sum_{j != i} pi_j q_{ji}) / q_i.  The workload chains of
// the paper are small and irreducible, so this converges in a handful of
// sweeps; the solver is used to verify the paper's calibration that the
// burst model spends the same steady-state fraction of time sending as the
// simple model (lambda_burst = 182/h, Sec. 4.3).
#pragma once

#include <vector>

#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::markov {

struct SteadyStateOptions {
  double tolerance = 1e-12;  // l_inf change per sweep at convergence
  int max_sweeps = 100000;
};

/// Computes the stationary distribution of an irreducible CTMC.
/// Throws NumericalError if the iteration does not converge (e.g. the chain
/// has an absorbing state, which has no interesting steady state here).
std::vector<double> steady_state(const Ctmc& chain,
                                 SteadyStateOptions options = {});

}  // namespace kibamrm::markov
