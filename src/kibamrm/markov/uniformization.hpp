// Transient solution of CTMCs by uniformisation.
//
// Given a CTMC with generator Q and an initial distribution pi(0), the
// transient distribution is
//     pi(t) = sum_{n>=0} Pois(q t; n) * pi(0) P^n,   P = I + Q/q,
// truncated with Fox-Glynn windows.  This is the computational core of the
// paper's Markovian approximation (Sec. 5): the expanded battery chain Q* is
// solved with exactly this routine.
//
// Multiple time points are handled *incrementally*: pi(t_{k+1}) is computed
// from pi(t_k) over the increment t_{k+1} - t_k, so a whole lifetime curve
// costs about as many matrix-vector products as its final time point alone
// (q * t_max plus a Fox-Glynn window per point).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::markov {

struct TransientOptions {
  /// Total truncation error budget per time increment.
  double epsilon = 1e-10;
  /// Uniformisation rate; 0 selects 1.02 * max_exit_rate automatically.
  /// (A rate slightly above the maximum keeps the diagonal of P positive,
  /// which damps oscillation in stiff chains.)
  double uniformization_rate = 0.0;
  /// Re-normalise the distribution after every time increment to counter
  /// accumulated round-off on long curves.
  bool renormalize = true;
  /// When false, solve() returns an empty vector: callers that stream
  /// points through the callback skip the time_points * states copy.
  bool collect_results = true;
};

/// Cost counters for complexity experiments (Sec. 5.3 / Sec. 6.1 quote
/// iteration counts; bench/ablation_complexity reproduces them).
struct TransientStats {
  std::uint64_t iterations = 0;     // total DTMC steps (= matrix products)
  std::uint64_t time_points = 0;    // number of requested outputs
  double uniformization_rate = 0.0;
};

/// Computes pi(t) for each t in `times` (must be sorted ascending, >= 0).
/// Returns one distribution per time point.  `on_point`, when given, is
/// called with (index, time, distribution) as soon as each point is ready --
/// the bench harness streams curve points this way.
class TransientSolver {
 public:
  explicit TransientSolver(const Ctmc& chain, TransientOptions options = {});

  std::vector<std::vector<double>> solve(
      const std::vector<double>& initial, const std::vector<double>& times,
      const std::function<void(std::size_t, double, const std::vector<double>&)>&
          on_point = nullptr);

  const TransientStats& last_stats() const { return stats_; }

 private:
  const Ctmc& chain_;
  TransientOptions options_;
  linalg::CsrMatrix p_;  // uniformised transition matrix
  double rate_;
  TransientStats stats_;
  // Sparsity fast path: rows of P that are exact unit diagonals (the
  // absorbing j1 = 0 layer of the expanded battery chain) are skipped by
  // the scatter kernel; their mass is carried over directly.
  std::vector<std::uint32_t> identity_rows_;
  std::vector<std::uint32_t> active_rows_;
  // Scratch reused across time increments and across solve() calls: a whole
  // lifetime curve performs zero per-increment allocations.
  std::vector<double> power_;
  std::vector<double> next_;
  std::vector<double> accum_;
};

/// One-shot convenience: transient distribution at a single time point.
std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double time,
                                           TransientOptions options = {});

}  // namespace kibamrm::markov
