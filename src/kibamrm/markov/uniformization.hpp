// Transient solution of CTMCs by uniformisation.
//
// Given a CTMC with generator Q and an initial distribution pi(0), the
// transient distribution is
//     pi(t) = sum_{n>=0} Pois(q t; n) * pi(0) P^n,   P = I + Q/q,
// truncated with Fox-Glynn windows.  This is the computational core of the
// paper's Markovian approximation (Sec. 5): the expanded battery chain Q* is
// solved with exactly this routine.
//
// Multiple time points are handled *incrementally*: pi(t_{k+1}) is computed
// from pi(t_k) over the increment t_{k+1} - t_k, so a whole lifetime curve
// costs about as many matrix-vector products as its final time point alone
// (q * t_max plus a Fox-Glynn window per point).
//
// Three hot-loop optimisations stack on top (all on by default, each
// toggleable for A/B measurement): the fused kernel folds the
// Poisson-weighted accumulation and the steady-state delta into the spmv's
// finishing sweep, steady-state detection short-circuits the window tail
// once the power iteration has converged (the dominant win on long-horizon
// absorbing chains), and Fox-Glynn windows are memoised per (lambda,
// epsilon) so uniform time grids compute one window per curve.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "kibamrm/markov/ctmc.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::markov {

struct TransientOptions {
  /// Total truncation error budget per time increment.
  double epsilon = 1e-10;
  /// Uniformisation rate; 0 selects 1.02 * max_exit_rate automatically.
  /// (A rate slightly above the maximum keeps the diagonal of P positive,
  /// which damps oscillation in stiff chains.)
  double uniformization_rate = 0.0;
  /// Re-normalise the distribution after every time increment to counter
  /// accumulated round-off on long curves.
  bool renormalize = true;
  /// When false, solve() returns an empty vector: callers that stream
  /// points through the callback skip the time_points * states copy.
  bool collect_results = true;
  /// Use the fused spmv+accumulate kernel (one finishing sweep per
  /// iteration instead of a separate axpy, and the steady-state delta for
  /// free).  False selects the pre-fusion loop, kept as the measured
  /// baseline for the perf gates and as a cross-check.
  bool fused_kernels = true;
  /// Steady-state / absorption early termination: once
  /// (window.right - n) * ||pi P^n - pi P^(n-1)||_inf <= threshold on two
  /// consecutive steps, the rest of the window is short-circuited by
  /// adding the entire residual tail mass times the converged vector.
  /// This is the classic PRISM/MRMC steady-state heuristic with a
  /// budgeted bound in place of the usual absolute cut: exact when the
  /// per-step changes keep shrinking (they do once the chain has settled;
  /// a row-stochastic P does not contract the sup norm in general, which
  /// is why the consecutive-step guard and the detection-on/off agreement
  /// tests back the bound empirically).  On long horizons of absorbing
  /// chains (the battery-empty tail of Fig. 8) this skips most of the
  /// window.  Requires fused_kernels (the delta is a by-product of the
  /// fused sweep); ignored when fused_kernels is false.
  bool steady_state_detection = true;
  /// Detection threshold; 0 selects epsilon / 2, charging the detection
  /// error against the same per-increment budget as the Fox-Glynn
  /// truncation so the overall guarantee keeps its order.
  double steady_state_threshold = 0.0;
};

/// Cost counters for complexity experiments (Sec. 5.3 / Sec. 6.1 quote
/// iteration counts; bench/ablation_complexity reproduces them).
struct TransientStats {
  std::uint64_t iterations = 0;     // total DTMC steps (= matrix products)
  std::uint64_t time_points = 0;    // number of requested outputs
  double uniformization_rate = 0.0;
  /// Poisson terms short-circuited by steady-state detection; iterations +
  /// iterations_saved equals the full Fox-Glynn term count, independent of
  /// whether and where detection fired.
  std::uint64_t iterations_saved = 0;
  /// Time increments on which detection fired.
  std::uint64_t steady_state_hits = 0;
  /// Fox-Glynn windows computed / served from the plan cache this solve;
  /// a uniform time grid computes exactly one.
  std::uint64_t windows_computed = 0;
  std::uint64_t windows_reused = 0;
  /// States inside the reachable closure of the initial distribution --
  /// the dimension the fused loop actually iterates.  Equals the full
  /// state count for the baseline loop (no compaction) and for chains
  /// whose closure is everything.
  std::uint64_t active_states = 0;
  /// Stored entries of the matrix the loop actually iterates (the
  /// compacted transpose in fused mode, the full uniformised P in
  /// baseline mode) -- the honest per-iteration work unit for throughput
  /// metrics.
  std::uint64_t active_nonzeros = 0;
  /// Structure of the iterated matrix (fused mode; 0 in baseline mode):
  /// maximal |col - row|, rows inside >= 4-row equal-length runs (what
  /// the SIMD gather grouping can take -- the metric state reordering
  /// exists to raise) and the longest such run.
  std::uint64_t matrix_bandwidth = 0;
  std::uint64_t groupable_rows = 0;
  std::uint64_t longest_uniform_run = 0;
  /// Rows repeating the previous row's full offset pattern (diagonal
  /// runs) and the longest such run; see linalg::StructureStats.
  std::uint64_t diagonal_rows = 0;
  std::uint64_t longest_diagonal_run = 0;
};

/// Computes pi(t) for each t in `times` (must be sorted ascending, >= 0).
/// Returns one distribution per time point.  `on_point`, when given, is
/// called with (index, time, distribution) as soon as each point is ready --
/// the bench harness streams curve points this way.
class TransientSolver {
 public:
  explicit TransientSolver(const Ctmc& chain, TransientOptions options = {});

  std::vector<std::vector<double>> solve(
      const std::vector<double>& initial, const std::vector<double>& times,
      const std::function<void(std::size_t, double, const std::vector<double>&)>&
          on_point = nullptr);

  const TransientStats& last_stats() const { return stats_; }

 private:
  /// Rebuilds the fused-loop machinery (reachable closure, compacted
  /// transpose, packed kernel plan) unless the cached closure already
  /// covers the support of `initial`.
  void prepare_fused(const std::vector<double>& initial);

  const Ctmc& chain_;
  TransientOptions options_;
  linalg::CsrMatrix p_;  // uniformised transition matrix
  // Fused-loop machinery: the loop runs in the *compacted* state space of
  // the reachable closure of the initial support (the paper's expanded
  // battery chains reach only ~half their states from the full-charge
  // start), gathering over the compacted transpose of P -- each output
  // entry is one short CSR-row gather, which the fused kernel finishes
  // with the accumulate and the steady-state delta in the same pass.
  // Rebuilt per solve only when a new initial escapes the cached closure.
  linalg::CsrMatrix fused_pt_;  // compacted transpose (CSR fallback kernel)
  // Compressed kernel plan over fused_pt_ (dictionary values + int16
  // offsets); when it builds -- it does for every expanded battery chain
  // -- fused_pt_ is released and the loop runs on the packed layout.
  std::optional<linalg::FusedGatherPlan> gather_plan_;
  std::vector<std::uint32_t> reachable_;      // compact index -> full state
  std::vector<std::uint8_t> reachable_mask_;  // full-space membership
  std::size_t fused_nonzeros_ = 0;  // entries of the compacted matrix
  // Structure of the compacted transpose, captured at plan build (the CSR
  // form may be released afterwards) and copied into every solve's stats.
  linalg::StructureStats fused_structure_;
  double rate_;
  TransientStats stats_;
  // Baseline-loop fast path: rows of P that are exact unit diagonals (the
  // absorbing j1 = 0 layer of the expanded battery chain) are skipped by
  // the scatter kernel; their mass is carried over directly.
  std::vector<std::uint32_t> identity_rows_;
  std::vector<std::uint32_t> active_rows_;
  // Scratch reused across time increments and across solve() calls: a whole
  // lifetime curve performs zero per-increment allocations.  In fused mode
  // these live in the compacted space; full_point_ is the full-dimension
  // buffer results and callbacks are expanded into.
  std::vector<double> power_;
  std::vector<double> next_;
  std::vector<double> accum_;
  std::vector<double> full_point_;
  // Mixed-tier scratch (kernels::Dispatch::kMixed + a row-offset gather
  // plan): the power iteration streams float32 vectors while accum_ and
  // current stay double, so the emitted curve only carries the float
  // operand rounding of the in-window products.
  std::vector<float> power_f_;
  std::vector<float> next_f_;
  // Fox-Glynn windows memoised across increments and solve() calls --
  // uniform time grids compute one window per curve instead of one per
  // point.
  UniformizationPlan plan_;
};

/// One-shot convenience: transient distribution at a single time point.
/// Thin wrapper over TransientSolver that pays the full construction cost
/// (uniformised matrix copy, row partition) on every call -- callers that
/// solve the same chain at several times should construct one
/// TransientSolver and reuse it (or pass all times to one solve()).
std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double time,
                                           TransientOptions options = {});

}  // namespace kibamrm::markov
