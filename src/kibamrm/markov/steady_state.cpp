#include "kibamrm/markov/steady_state.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::markov {

std::vector<double> steady_state(const Ctmc& chain,
                                 SteadyStateOptions options) {
  const std::size_t n = chain.state_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (chain.is_absorbing(i)) {
      throw NumericalError(
          "steady_state: chain has an absorbing state; stationary "
          "distribution is degenerate");
    }
  }

  // Column access: Q^T stores incoming rates contiguously per state.
  const linalg::CsrMatrix qt = chain.generator().transposed();
  const auto row_ptr = qt.row_pointers();
  const auto col_idx = qt.column_indices();
  const auto values = qt.values();

  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double worst_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double incoming = 0.0;
      double exit = 0.0;
      for (std::uint32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        if (col_idx[k] == i) {
          exit = -values[k];
        } else {
          incoming += pi[col_idx[k]] * values[k];
        }
      }
      KIBAMRM_REQUIRE(exit > 0.0, "steady_state: zero exit rate");
      const double updated = incoming / exit;
      worst_change = std::max(worst_change, std::abs(updated - pi[i]));
      pi[i] = updated;
    }
    linalg::normalize_probability(pi);
    if (worst_change < options.tolerance) {
      return pi;
    }
  }
  throw NumericalError("steady_state: Gauss-Seidel did not converge");
}

}  // namespace kibamrm::markov
