#include "kibamrm/markov/ctmc.hpp"

#include <cmath>
#include <sstream>

#include "kibamrm/common/error.hpp"

namespace kibamrm::markov {

Ctmc::Ctmc(linalg::CsrMatrix generator, double row_sum_tolerance)
    : generator_(std::move(generator)) {
  if (generator_.rows() != generator_.cols()) {
    throw ModelError("CTMC generator must be square");
  }
  const auto row_ptr = generator_.row_pointers();
  const auto col_idx = generator_.column_indices();
  const auto values = generator_.values();
  for (std::size_t row = 0; row < generator_.rows(); ++row) {
    double row_sum = 0.0;
    double exit = 0.0;
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const double v = values[k];
      row_sum += v;
      if (col_idx[k] == row) {
        if (v > 0.0) {
          std::ostringstream msg;
          msg << "CTMC generator has positive diagonal at state " << row;
          throw ModelError(msg.str());
        }
        exit = -v;
      } else if (v < 0.0) {
        std::ostringstream msg;
        msg << "CTMC generator has negative rate at (" << row << ", "
            << col_idx[k] << "): " << v;
        throw ModelError(msg.str());
      }
    }
    const double scale = exit > 1.0 ? exit : 1.0;
    if (std::abs(row_sum) > row_sum_tolerance * scale) {
      std::ostringstream msg;
      msg << "CTMC generator row " << row << " sums to " << row_sum
          << " (expected 0)";
      throw ModelError(msg.str());
    }
    max_exit_rate_ = std::max(max_exit_rate_, exit);
  }
}

double Ctmc::exit_rate(std::size_t state) const {
  KIBAMRM_REQUIRE(state < state_count(), "exit_rate: state out of range");
  return -generator_.at(state, state);
}

bool Ctmc::is_absorbing(std::size_t state) const {
  KIBAMRM_REQUIRE(state < state_count(), "is_absorbing: state out of range");
  const auto row_ptr = generator_.row_pointers();
  return row_ptr[state] == row_ptr[state + 1];
}

linalg::DenseReal Ctmc::dense_generator() const {
  const std::size_t n = state_count();
  linalg::DenseReal dense(n, n);
  const auto row_ptr = generator_.row_pointers();
  const auto col_idx = generator_.column_indices();
  const auto values = generator_.values();
  for (std::size_t row = 0; row < n; ++row) {
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      dense(row, col_idx[k]) = values[k];
    }
  }
  return dense;
}

Ctmc ctmc_from_rates(const std::vector<std::vector<double>>& rates) {
  const std::size_t n = rates.size();
  KIBAMRM_REQUIRE(n > 0, "ctmc_from_rates: empty rate table");
  linalg::CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    KIBAMRM_REQUIRE(rates[i].size() == n,
                    "ctmc_from_rates: rate table must be square");
    double exit = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rates[i][j] != 0.0) {
        builder.add(i, j, rates[i][j]);
        exit += rates[i][j];
      }
    }
    if (exit != 0.0) builder.add(i, i, -exit);
  }
  return Ctmc(builder.build());
}

}  // namespace kibamrm::markov
