#include "kibamrm/markov/phase_type.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::markov {

PhaseType::PhaseType(std::vector<double> alpha,
                     linalg::DenseReal sub_generator)
    : alpha_(std::move(alpha)), t_(std::move(sub_generator)) {
  const std::size_t n = alpha_.size();
  KIBAMRM_REQUIRE(n > 0, "phase-type needs at least one phase");
  KIBAMRM_REQUIRE(t_.rows() == n && t_.cols() == n,
                  "phase-type sub-generator shape mismatch");
  double alpha_sum = 0.0;
  for (double a : alpha_) {
    KIBAMRM_REQUIRE(a >= 0.0, "phase-type alpha must be non-negative");
    alpha_sum += a;
  }
  KIBAMRM_REQUIRE(alpha_sum <= 1.0 + 1e-12,
                  "phase-type alpha must sum to at most 1");
  exit_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        KIBAMRM_REQUIRE(t_(i, j) >= 0.0,
                        "phase-type off-diagonal rates must be >= 0");
      }
      row_sum += t_(i, j);
    }
    KIBAMRM_REQUIRE(row_sum <= 1e-9,
                    "phase-type sub-generator rows must sum to <= 0");
    exit_[i] = -row_sum;
    if (exit_[i] < 0.0) exit_[i] = 0.0;
  }
}

double PhaseType::cdf(double t) const {
  KIBAMRM_REQUIRE(t >= 0.0, "phase-type cdf: t must be >= 0");
  const linalg::DenseReal e = linalg::expm(t_.scaled(t));
  const std::vector<double> row = e.left_multiply(alpha_);
  double survival = 0.0;
  for (double x : row) survival += x;
  return 1.0 - survival;
}

double PhaseType::pdf(double t) const {
  KIBAMRM_REQUIRE(t >= 0.0, "phase-type pdf: t must be >= 0");
  const linalg::DenseReal e = linalg::expm(t_.scaled(t));
  const std::vector<double> row = e.left_multiply(alpha_);
  double density = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) density += row[i] * exit_[i];
  return density;
}

double PhaseType::mean() const {
  // Solve m = -T^{-1} 1 (mean absorption time from each phase), then dot
  // with alpha.
  const std::size_t n = phases();
  linalg::DenseReal rhs(n, 1, -1.0);
  linalg::DenseReal m = linalg::lu_solve(t_, rhs);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += alpha_[i] * m(i, 0);
  return mean;
}

double PhaseType::sample(common::RandomStream& rng) const {
  // Choose the starting phase (or immediate absorption on the alpha
  // deficit), then walk the phase process.
  double alpha_sum = 0.0;
  for (double a : alpha_) alpha_sum += a;
  if (!rng.bernoulli(alpha_sum > 1.0 ? 1.0 : alpha_sum)) return 0.0;

  std::vector<double> weights = alpha_;
  std::size_t phase = rng.discrete(weights);
  double time = 0.0;
  const std::size_t n = phases();
  while (true) {
    std::vector<double> out(n + 1, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != phase) out[j] = t_(phase, j);
    }
    out[n] = exit_[phase];
    const double rate = -t_(phase, phase);
    if (!(rate > 0.0)) {
      throw NumericalError("phase-type sample: phase with zero exit rate");
    }
    time += rng.exponential(rate);
    const std::size_t next = rng.discrete(out);
    if (next == n) return time;
    phase = next;
  }
}

PhaseType PhaseType::erlang(int k, double rate) {
  KIBAMRM_REQUIRE(k >= 1, "Erlang shape must be >= 1");
  KIBAMRM_REQUIRE(rate > 0.0, "Erlang rate must be positive");
  const auto n = static_cast<std::size_t>(k);
  std::vector<double> alpha(n, 0.0);
  alpha[0] = 1.0;
  linalg::DenseReal t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t(i, i) = -rate;
    if (i + 1 < n) t(i, i + 1) = rate;
  }
  return PhaseType(std::move(alpha), std::move(t));
}

PhaseType PhaseType::exponential(double rate) { return erlang(1, rate); }

double erlang_cdf(int k, double rate, double t) {
  KIBAMRM_REQUIRE(k >= 1, "Erlang shape must be >= 1");
  KIBAMRM_REQUIRE(rate > 0.0, "Erlang rate must be positive");
  if (t <= 0.0) return 0.0;
  return poisson_tail(rate * t, static_cast<std::uint64_t>(k));
}

double erlang_mean(int k, double rate) {
  return static_cast<double>(k) / rate;
}

double erlang_variance(int k, double rate) {
  return static_cast<double>(k) / (rate * rate);
}

}  // namespace kibamrm::markov
