#include "kibamrm/io/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "kibamrm/common/error.hpp"

namespace kibamrm::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  KIBAMRM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  KIBAMRM_REQUIRE(cells.size() == headers_.size(),
                  "table row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) formatted.push_back(format_double(value, precision));
  add_row(std::move(formatted));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    out << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw Error("cannot open CSV output file: " + path);
  }
  write_csv(file);
  if (!file.good()) {
    throw Error("failed writing CSV output file: " + path);
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace kibamrm::io
