// Aligned text tables and CSV output for the bench/example binaries.
//
// The bench harness prints each reproduced paper table/figure as an aligned
// text table on stdout and can mirror the same rows into a CSV file for
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kibamrm::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.  (Named
  /// distinctly from add_row to keep brace-initialised string rows
  /// unambiguous.)
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Writes an aligned text rendering (header, rule, rows).
  void print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& out) const;

  /// Writes CSV to a file path; throws Error on I/O failure.
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for mixed-type rows).
std::string format_double(double value, int precision = 4);

}  // namespace kibamrm::io
