// Modified Kinetic Battery Model (after Rao et al. [9], Sec. 3).
//
// Rao et al. extend the KiBaM with a recovery rate that additionally depends
// on the height of the bound-charge well, "making the recovery slower when
// less charge is left in the battery".  The exact equations of [9] are not
// reproduced in the paper, so we implement the simplest model with that
// property (documented substitution, see DESIGN.md Sec. 4):
//
//     dy1/dt = -I + k * (h2 / h2(0)) * (h2 - h1)
//     dy2/dt =     - k * (h2 / h2(0)) * (h2 - h1)
//
// i.e. the flow constant is scaled by the bound well's fill level (equal to
// 1 when full, approaching 0 as the bound charge drains).  The paper's
// qualitative finding we reproduce (Table 1): evaluated *deterministically*
// this still yields frequency-independent lifetimes for 50%-duty square
// waves, while a *stochastic* discrete-recovery evaluation shows the
// experimentally observed frequency dependence.
//
// There is no closed form, so segments are integrated with RK4.
#pragma once

#include "kibamrm/battery/battery_model.hpp"

namespace kibamrm::battery {

class ModifiedKibamBattery final : public BatteryModel {
 public:
  /// `params` as for the analytical KiBaM; `rk4_step` is the integration
  /// sub-step in the model's time unit.
  explicit ModifiedKibamBattery(KibamParameters params, double rk4_step = 1.0);

  void reset() override;
  std::optional<double> advance(double current, double dt) override;
  double available_charge() const override { return y1_; }
  double bound_charge() const override { return y2_; }
  bool empty() const override { return empty_; }

  const KibamParameters& parameters() const { return params_; }

 private:
  KibamParameters params_;
  double rk4_step_;
  double initial_bound_height_;
  double y1_;
  double y2_;
  bool empty_ = false;
};

}  // namespace kibamrm::battery
