#include "kibamrm/battery/peukert.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

PeukertLaw::PeukertLaw(double a, double b) : a_(a), b_(b) {
  KIBAMRM_REQUIRE(a > 0.0, "Peukert constant a must be positive");
  KIBAMRM_REQUIRE(b >= 1.0, "Peukert exponent b must be >= 1");
}

PeukertLaw PeukertLaw::fit(double current1, double lifetime1, double current2,
                           double lifetime2) {
  KIBAMRM_REQUIRE(current1 > 0.0 && current2 > 0.0,
                  "Peukert fit currents must be positive");
  KIBAMRM_REQUIRE(lifetime1 > 0.0 && lifetime2 > 0.0,
                  "Peukert fit lifetimes must be positive");
  KIBAMRM_REQUIRE(current1 != current2,
                  "Peukert fit needs two distinct currents");
  const double b =
      std::log(lifetime1 / lifetime2) / std::log(current2 / current1);
  const double a = lifetime1 * std::pow(current1, b);
  return PeukertLaw(a, b);
}

double PeukertLaw::lifetime(double current) const {
  KIBAMRM_REQUIRE(current > 0.0, "Peukert lifetime needs positive current");
  return a_ / std::pow(current, b_);
}

double PeukertLaw::effective_capacity(double current) const {
  return current * lifetime(current);
}

}  // namespace kibamrm::battery
