#include "kibamrm/battery/stochastic_battery.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

void StochasticBatteryParameters::validate() const {
  if (available_units == 0) {
    throw ModelError("stochastic battery needs available units");
  }
  if (!(charge_per_unit > 0.0)) {
    throw ModelError("charge per unit must be positive");
  }
  if (!(slot_duration > 0.0)) {
    throw ModelError("slot duration must be positive");
  }
  if (recovery_decay < 0.0) {
    throw ModelError("recovery decay must be non-negative");
  }
  if (!(base_recovery_probability > 0.0) || base_recovery_probability > 1.0) {
    throw ModelError("base recovery probability must lie in (0, 1]");
  }
}

StochasticBattery::StochasticBattery(StochasticBatteryParameters params,
                                     common::RandomStream rng)
    : params_(params),
      rng_(rng),
      available_(params.available_units),
      bound_(params.bound_units),
      drain_accumulator_(0.0),
      slot_accumulator_(0.0),
      elapsed_in_advance_(0.0) {
  params_.validate();
}

void StochasticBattery::reset() {
  available_ = params_.available_units;
  bound_ = params_.bound_units;
  drain_accumulator_ = 0.0;
  slot_accumulator_ = 0.0;
  empty_ = false;
}

double StochasticBattery::available_charge() const {
  return static_cast<double>(available_) * params_.charge_per_unit;
}

double StochasticBattery::bound_charge() const {
  return static_cast<double>(bound_) * params_.charge_per_unit;
}

void StochasticBattery::drain(double current, double duration) {
  drain_accumulator_ += current * duration / params_.charge_per_unit;
  while (drain_accumulator_ >= 1.0 && available_ > 0) {
    --available_;
    drain_accumulator_ -= 1.0;
  }
  if (available_ == 0 && drain_accumulator_ > 0.0) empty_ = true;
}

void StochasticBattery::run_slot(double current) {
  if (available_ == 0) {
    empty_ = true;
    return;
  }
  if (current == 0.0 && bound_ > 0) {
    // Idle slot: probabilistic recovery, decaying with depth of discharge.
    const double total_units = static_cast<double>(
        params_.available_units + params_.bound_units);
    const double consumed = total_units - static_cast<double>(available_) -
                            static_cast<double>(bound_);
    const double depth = consumed / total_units;
    const double p = params_.base_recovery_probability *
                     std::exp(-params_.recovery_decay * depth);
    if (rng_.bernoulli(p)) {
      --bound_;
      ++available_;
    }
  }
}

std::optional<double> StochasticBattery::advance(double current, double dt) {
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  KIBAMRM_REQUIRE(dt >= 0.0, "time step must be >= 0");
  if (empty_) return 0.0;

  elapsed_in_advance_ = 0.0;
  // Consume whole slots; a partial slot at the end is carried over so that
  // consecutive segments tile time exactly.
  double remaining = dt;
  while (remaining > 0.0 && !empty_) {
    const double to_slot_boundary =
        (1.0 - slot_accumulator_) * params_.slot_duration;
    if (remaining < to_slot_boundary) {
      // Partial slot: draw charge proportionally, defer recovery to the
      // slot boundary.
      slot_accumulator_ += remaining / params_.slot_duration;
      drain(current, remaining);
      elapsed_in_advance_ += remaining;
      remaining = 0.0;
      break;
    }
    remaining -= to_slot_boundary;
    drain(current, to_slot_boundary);
    elapsed_in_advance_ += to_slot_boundary;
    slot_accumulator_ = 0.0;
    if (!empty_) run_slot(current);
  }
  if (empty_) return elapsed_in_advance_;
  return std::nullopt;
}

}  // namespace kibamrm::battery
