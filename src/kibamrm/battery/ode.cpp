#include "kibamrm/battery/ode.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

namespace {

WellVector rk4_step(const WellOde& f, double t, const WellVector& y,
                    double h) {
  const WellVector k1 = f(t, y);
  const WellVector y2 = {y[0] + 0.5 * h * k1[0], y[1] + 0.5 * h * k1[1]};
  const WellVector k2 = f(t + 0.5 * h, y2);
  const WellVector y3 = {y[0] + 0.5 * h * k2[0], y[1] + 0.5 * h * k2[1]};
  const WellVector k3 = f(t + 0.5 * h, y3);
  const WellVector y4 = {y[0] + h * k3[0], y[1] + h * k3[1]};
  const WellVector k4 = f(t + h, y4);
  return {y[0] + h / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]),
          y[1] + h / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1])};
}

}  // namespace

WellVector rk4_advance(const WellOde& f, double t, WellVector y, double dt,
                       int steps) {
  KIBAMRM_REQUIRE(steps >= 1, "rk4_advance: steps must be >= 1");
  KIBAMRM_REQUIRE(dt >= 0.0, "rk4_advance: dt must be >= 0");
  if (dt == 0.0) return y;
  const double h = dt / steps;
  for (int i = 0; i < steps; ++i) {
    y = rk4_step(f, t, y, h);
    t += h;
  }
  return y;
}

OdeEventResult rk4_until_event(const WellOde& f, double t0,
                               const WellVector& y0, double horizon,
                               double step,
                               const std::function<bool(const WellVector&)>&
                                   event,
                               double tolerance) {
  KIBAMRM_REQUIRE(step > 0.0, "rk4_until_event: step must be positive");
  KIBAMRM_REQUIRE(horizon >= t0, "rk4_until_event: horizon before start");

  OdeEventResult result;
  result.state = y0;
  if (event(y0)) {
    result.event_hit = true;
    result.event_time = t0;
    return result;
  }

  double t = t0;
  WellVector y = y0;
  while (t < horizon) {
    const double h = std::min(step, horizon - t);
    const WellVector next = rk4_step(f, t, y, h);
    if (event(next)) {
      // Bisect [t, t+h] for the event time.
      double lo = 0.0;
      double hi = h;
      WellVector y_hi = next;
      for (int i = 0; i < 200 && hi - lo > tolerance; ++i) {
        const double mid = 0.5 * (lo + hi);
        const WellVector y_mid = rk4_step(f, t, y, mid);
        if (event(y_mid)) {
          hi = mid;
          y_hi = y_mid;
        } else {
          lo = mid;
        }
      }
      result.event_hit = true;
      result.event_time = t + hi;
      result.state = y_hi;
      return result;
    }
    y = next;
    t += h;
  }
  result.state = y;
  return result;
}

}  // namespace kibamrm::battery
