#include "kibamrm/battery/battery_model.hpp"

#include <limits>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

double KibamParameters::k_prime() const {
  if (available_fraction >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return flow_constant / (available_fraction * (1.0 - available_fraction));
}

void KibamParameters::validate() const {
  if (!(capacity > 0.0)) {
    throw ModelError("KiBaM capacity must be positive");
  }
  if (!(available_fraction > 0.0) || available_fraction > 1.0) {
    throw ModelError("KiBaM available fraction c must lie in (0, 1]");
  }
  if (flow_constant < 0.0) {
    throw ModelError("KiBaM flow constant k must be non-negative");
  }
  if (available_fraction >= 1.0 && flow_constant != 0.0) {
    throw ModelError(
        "KiBaM with c = 1 has no bound well; flow constant k must be 0");
  }
}

}  // namespace kibamrm::battery
