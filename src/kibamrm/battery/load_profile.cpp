#include "kibamrm/battery/load_profile.hpp"

#include <cmath>
#include <limits>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

LoadProfile::LoadProfile(std::vector<LoadSegment> segments, bool periodic)
    : segments_(std::move(segments)), periodic_(periodic) {
  KIBAMRM_REQUIRE(!segments_.empty(), "load profile needs >= 1 segment");
  for (const LoadSegment& seg : segments_) {
    KIBAMRM_REQUIRE(seg.duration > 0.0, "segment duration must be positive");
    KIBAMRM_REQUIRE(seg.current >= 0.0, "segment current must be >= 0");
    cycle_duration_ += seg.duration;
  }
}

LoadProfile LoadProfile::constant(double current) {
  // One astronomically long segment: the lifetime driver then reaches any
  // max_time horizon in a single advance() call.
  return LoadProfile({{1e18, current}}, /*periodic=*/true);
}

LoadProfile LoadProfile::square_wave(double frequency, double current,
                                     bool on_first) {
  KIBAMRM_REQUIRE(frequency > 0.0, "square wave frequency must be positive");
  const double half = 0.5 / frequency;
  if (on_first) {
    return LoadProfile({{half, current}, {half, 0.0}});
  }
  return LoadProfile({{half, 0.0}, {half, current}});
}

double LoadProfile::current_at(double t) const {
  KIBAMRM_REQUIRE(t >= 0.0, "current_at: time must be >= 0");
  double offset = t;
  if (periodic_) {
    offset = std::fmod(t, cycle_duration_);
  }
  for (const LoadSegment& seg : segments_) {
    if (offset < seg.duration) return seg.current;
    offset -= seg.duration;
  }
  return segments_.back().current;  // non-periodic: hold the last current
}

double LoadProfile::average_current(double horizon) const {
  KIBAMRM_REQUIRE(horizon > 0.0, "average_current: horizon must be positive");
  double window = periodic_ ? cycle_duration_ : horizon;
  SegmentWalker walker(*this);
  double charge = 0.0;
  double remaining = window;
  while (remaining > 0.0) {
    const double dt = std::min(remaining, walker.remaining());
    charge += walker.current() * dt;
    walker.consume(dt);
    remaining -= dt;
  }
  return charge / window;
}

SegmentWalker::SegmentWalker(const LoadProfile& profile) : profile_(profile) {}

double SegmentWalker::current() const {
  if (past_end_) return profile_.segments().back().current;
  return profile_.segments()[index_].current;
}

double SegmentWalker::remaining() const {
  if (past_end_) return std::numeric_limits<double>::infinity();
  return profile_.segments()[index_].duration - used_in_segment_;
}

void SegmentWalker::consume(double dt) {
  if (past_end_) return;
  KIBAMRM_REQUIRE(dt <= remaining() * (1.0 + 1e-12) && dt >= 0.0,
                  "consume: dt exceeds remaining segment duration");
  used_in_segment_ += dt;
  if (used_in_segment_ >= profile_.segments()[index_].duration * (1.0 - 1e-12)) {
    used_in_segment_ = 0.0;
    ++index_;
    if (index_ == profile_.segments().size()) {
      if (profile_.periodic()) {
        index_ = 0;
      } else {
        past_end_ = true;
      }
    }
  }
}

}  // namespace kibamrm::battery
