#include "kibamrm/battery/lifetime.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

std::optional<double> compute_lifetime(BatteryModel& model,
                                       const LoadProfile& profile,
                                       LifetimeOptions options) {
  KIBAMRM_REQUIRE(options.max_time > 0.0, "max_time must be positive");
  model.reset();
  SegmentWalker walker(profile);
  double elapsed = 0.0;
  for (std::size_t n = 0; n < options.max_segments; ++n) {
    const double horizon = options.max_time - elapsed;
    if (horizon <= 0.0) return std::nullopt;
    const double dt = std::min(walker.remaining(), horizon);
    const std::optional<double> crossing = model.advance(walker.current(), dt);
    if (crossing) return elapsed + *crossing;
    elapsed += dt;
    walker.consume(dt);
  }
  throw NumericalError(
      "compute_lifetime: segment budget exhausted before depletion");
}

std::vector<WellSample> record_trajectory(BatteryModel& model,
                                          const LoadProfile& profile,
                                          const std::vector<double>& times) {
  KIBAMRM_REQUIRE(std::is_sorted(times.begin(), times.end()),
                  "trajectory times must be sorted ascending");
  KIBAMRM_REQUIRE(times.empty() || times.front() >= 0.0,
                  "trajectory times must be non-negative");
  model.reset();
  SegmentWalker walker(profile);
  std::vector<WellSample> samples;
  samples.reserve(times.size());
  double elapsed = 0.0;
  for (double target : times) {
    // Advance in segment-sized steps until we reach the target time.
    while (elapsed < target) {
      const double dt = std::min(walker.remaining(), target - elapsed);
      const std::optional<double> crossing =
          model.advance(walker.current(), dt);
      if (crossing) {
        samples.push_back({elapsed + *crossing, model.available_charge(),
                           model.bound_charge()});
        return samples;
      }
      elapsed += dt;
      walker.consume(dt);
    }
    samples.push_back({target, model.available_charge(),
                       model.bound_charge()});
  }
  return samples;
}

}  // namespace kibamrm::battery
