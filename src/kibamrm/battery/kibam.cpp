#include "kibamrm/battery/kibam.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

namespace {
constexpr double kRootTolerance = 1e-12;  // relative bisection tolerance
}

KibamBattery::KibamBattery(KibamParameters params)
    : KibamBattery(params, params.initial_available(), params.initial_bound()) {}

KibamBattery::KibamBattery(KibamParameters params, double initial_available,
                           double initial_bound)
    : params_(params),
      initial_y1_(initial_available),
      initial_y2_(initial_bound),
      y1_(initial_available),
      y2_(initial_bound) {
  params_.validate();
  KIBAMRM_REQUIRE(initial_available >= 0.0 && initial_bound >= 0.0,
                  "initial well contents must be non-negative");
  if (params_.available_fraction >= 1.0) {
    KIBAMRM_REQUIRE(initial_bound == 0.0,
                    "c = 1 battery cannot hold bound charge");
  }
  empty_ = !(y1_ > 0.0);
}

void KibamBattery::reset() {
  y1_ = initial_y1_;
  y2_ = initial_y2_;
  empty_ = !(y1_ > 0.0);
}

double KibamBattery::available_height() const {
  return y1_ / params_.available_fraction;
}

double KibamBattery::bound_height() const {
  if (params_.available_fraction >= 1.0) return 0.0;
  return y2_ / (1.0 - params_.available_fraction);
}

KibamBattery::WellState KibamBattery::evaluate(double current,
                                               double t) const {
  const double c = params_.available_fraction;
  if (c >= 1.0) {
    // Degenerate single-well battery: dy1/dt = -I.
    return {y1_ - current * t, 0.0};
  }
  const double k_prime = params_.k_prime();
  const double y0 = y1_ + y2_;
  const double delta0 = y2_ / (1.0 - c) - y1_ / c;
  double delta;
  if (params_.flow_constant == 0.0) {
    // No flow between the wells: y1 drains alone.
    return {y1_ - current * t, y2_};
  }
  const double delta_inf = current / (c * k_prime);
  delta = delta_inf + (delta0 - delta_inf) * std::exp(-k_prime * t);
  const double y = y0 - current * t;
  const double y1 = c * (y - (1.0 - c) * delta);
  return {y1, y - y1};
}

std::optional<double> KibamBattery::first_empty_crossing(double current,
                                                         double dt) const {
  // y1(t) = alpha - beta t - gamma e^{-k' t} rises to at most one maximum
  // and then decreases (or is monotone).  Hence the first root in (0, dt]
  // exists iff y1 becomes non-positive at the segment end or past the
  // maximum, and standard bisection on the decreasing branch finds it.
  const auto y1_at = [&](double t) { return evaluate(current, t).y1; };

  if (y1_at(dt) > 0.0) {
    // Unimodal shape: positive at both ends implies positive throughout
    // (the only interior extremum is a maximum).
    return std::nullopt;
  }

  // Find a bracket [lo, hi] with y1(lo) > 0 >= y1(hi) on the decreasing
  // branch.  t = 0 qualifies as lo: if the maximum lies inside (0, dt),
  // y1 only grows before it, so the sign change is after the maximum and
  // bisection stays correct because every probe with y1 > 0 moves lo
  // rightward.
  double lo = 0.0;
  double hi = dt;
  // Terminate on the bracket width relative to the *root location* hi, not
  // to dt: constant-load segments are quasi-infinite (1e15+), and a
  // dt-relative tolerance would leave an absolute error of seconds there.
  // 200 iterations bound even the 1e15 -> 1e-13 worst case.
  for (int i = 0; i < 200 && hi - lo > kRootTolerance * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (y1_at(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

std::optional<double> KibamBattery::advance(double current, double dt) {
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  KIBAMRM_REQUIRE(dt >= 0.0, "time step must be >= 0");
  if (empty_) return 0.0;
  if (dt == 0.0) return std::nullopt;

  const std::optional<double> crossing = first_empty_crossing(current, dt);
  const double horizon = crossing.value_or(dt);
  WellState next = evaluate(current, horizon);
  if (crossing) {
    next.y1 = 0.0;  // snap the bisection residue
    empty_ = true;
  }
  // Round-off guards: wells never go negative, total never grows.
  y1_ = next.y1 < 0.0 ? 0.0 : next.y1;
  y2_ = next.y2 < 0.0 ? 0.0 : next.y2;
  if (y1_ <= 0.0) empty_ = true;
  return crossing;
}

}  // namespace kibamrm::battery
