// Peukert's law (Sec. 2): L = a / I^b with battery constants a > 0, b > 1.
// A simple nonlinear lifetime approximation for constant loads; the paper
// cites it as the baseline that variable loads break (all profiles with the
// same average current get the same Peukert lifetime).
#pragma once

namespace kibamrm::battery {

class PeukertLaw {
 public:
  /// Direct construction from the constants.
  PeukertLaw(double a, double b);

  /// Fits (a, b) from two measured (current, lifetime) points with
  /// distinct currents:  b = ln(L1/L2) / ln(I2/I1),  a = L1 * I1^b.
  static PeukertLaw fit(double current1, double lifetime1, double current2,
                        double lifetime2);

  /// Lifetime under constant current.
  double lifetime(double current) const;

  /// Effective delivered capacity I * L(I) = a * I^{1-b}: decreases with
  /// the load, capturing the rate-capacity effect qualitatively.
  double effective_capacity(double current) const;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_;
  double b_;
};

}  // namespace kibamrm::battery
