#include "kibamrm/battery/rakhmatov_vrudhula.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

void RakhmatovVrudhulaParameters::validate() const {
  if (!(alpha > 0.0)) {
    throw ModelError("R-V model: capacity alpha must be positive");
  }
  if (!(beta > 0.0)) {
    throw ModelError("R-V model: diffusion constant beta must be positive");
  }
  if (modes < 1 || modes > 1000) {
    throw ModelError("R-V model: modes must lie in [1, 1000]");
  }
}

RakhmatovVrudhulaBattery::RakhmatovVrudhulaBattery(
    RakhmatovVrudhulaParameters params)
    : params_(params),
      mode_state_(static_cast<std::size_t>(params.modes), 0.0) {
  params_.validate();
}

void RakhmatovVrudhulaBattery::reset() {
  mode_state_.assign(mode_state_.size(), 0.0);
  consumed_ = 0.0;
  empty_ = false;
}

double RakhmatovVrudhulaBattery::apparent_charge() const {
  double unavailable = 0.0;
  for (double s : mode_state_) unavailable += s;
  return consumed_ + 2.0 * unavailable;
}

double RakhmatovVrudhulaBattery::available_charge() const {
  const double remaining = params_.alpha - apparent_charge();
  return remaining > 0.0 ? remaining : 0.0;
}

double RakhmatovVrudhulaBattery::bound_charge() const {
  double unavailable = 0.0;
  for (double s : mode_state_) unavailable += s;
  return 2.0 * unavailable;
}

double RakhmatovVrudhulaBattery::sigma_after(double current,
                                             double dt) const {
  double sigma = consumed_ + current * dt;
  const double beta_sq = params_.beta * params_.beta;
  for (std::size_t m = 0; m < mode_state_.size(); ++m) {
    const double lambda =
        beta_sq * static_cast<double>((m + 1) * (m + 1));
    const double decay = std::exp(-lambda * dt);
    const double s =
        mode_state_[m] * decay + current * (1.0 - decay) / lambda;
    sigma += 2.0 * s;
  }
  return sigma;
}

void RakhmatovVrudhulaBattery::commit(double current, double dt) {
  const double beta_sq = params_.beta * params_.beta;
  for (std::size_t m = 0; m < mode_state_.size(); ++m) {
    const double lambda =
        beta_sq * static_cast<double>((m + 1) * (m + 1));
    const double decay = std::exp(-lambda * dt);
    mode_state_[m] =
        mode_state_[m] * decay + current * (1.0 - decay) / lambda;
  }
  consumed_ += current * dt;
}

std::optional<double> RakhmatovVrudhulaBattery::advance(double current,
                                                        double dt) {
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  KIBAMRM_REQUIRE(dt >= 0.0, "time step must be >= 0");
  if (empty_) return 0.0;
  if (dt == 0.0) return std::nullopt;

  // Under load sigma is strictly increasing (every term grows with t); at
  // rest it decreases (recovery).  Hence the first alpha-crossing inside
  // the segment exists iff sigma(dt) >= alpha, and bisection on the
  // monotone branch finds it (at rest there is no crossing).
  if (sigma_after(current, dt) < params_.alpha) {
    commit(current, dt);
    return std::nullopt;
  }
  if (current == 0.0) {
    // Rest can only reduce sigma; reaching here means we were already at
    // the boundary through round-off.
    empty_ = true;
    return 0.0;
  }
  double lo = 0.0;
  double hi = dt;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (sigma_after(current, mid) < params_.alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  commit(current, hi);
  empty_ = true;
  return hi;
}

std::optional<double> rv_constant_load_lifetime(
    const RakhmatovVrudhulaParameters& params, double current,
    double max_time) {
  params.validate();
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  if (current == 0.0) return std::nullopt;

  const double beta_sq = params.beta * params.beta;
  const auto sigma = [&](double t) {
    double total = current * t;
    for (int m = 1; m <= params.modes; ++m) {
      const double lambda = beta_sq * static_cast<double>(m * m);
      total += 2.0 * current * (1.0 - std::exp(-lambda * t)) / lambda;
    }
    return total;
  };
  if (sigma(max_time) < params.alpha) return std::nullopt;
  double lo = 0.0;
  double hi = max_time;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (sigma(mid) < params.alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace kibamrm::battery
