// KiBaM parameter calibration (Sec. 3).
//
// The paper determines c as the ratio of the capacity delivered under a very
// large load to the capacity delivered under a very small load, and fits k
// "in such a way that the calculated lifetime for a continuous load of
// 0.96 A corresponded to the experimental value given in [9]".  This module
// implements both procedures.
#pragma once

#include "kibamrm/battery/battery_model.hpp"

namespace kibamrm::battery {

/// c = (capacity delivered at very large load) / (capacity at very small
/// load): at large loads only the available well empties before the cutoff;
/// at small loads both wells drain completely (Sec. 3).
double estimate_available_fraction(double capacity_at_large_load,
                                   double capacity_at_small_load);

struct CalibrationOptions {
  double k_lower = 1e-9;   // search bracket for k (per time unit)
  double k_upper = 1.0;
  double tolerance = 1e-12;  // relative bracket width at convergence
  int max_iterations = 200;
};

/// Finds the flow constant k such that the analytical KiBaM with capacity C
/// and fraction c has the given lifetime under the given constant current.
///
/// The lifetime is strictly increasing in k (more bound charge becomes
/// available in time), so bisection applies.  Throws NumericalError if the
/// target lifetime is outside the attainable range
/// [lifetime(k_lower), lifetime(k_upper)].
double calibrate_flow_constant(double capacity, double available_fraction,
                               double current, double target_lifetime,
                               CalibrationOptions options = {});

}  // namespace kibamrm::battery
