#include "kibamrm/battery/calibration.hpp"

#include <cmath>

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

double estimate_available_fraction(double capacity_at_large_load,
                                   double capacity_at_small_load) {
  KIBAMRM_REQUIRE(capacity_at_large_load > 0.0,
                  "large-load capacity must be positive");
  KIBAMRM_REQUIRE(capacity_at_small_load >= capacity_at_large_load,
                  "small-load capacity must be >= large-load capacity");
  return capacity_at_large_load / capacity_at_small_load;
}

namespace {

double constant_load_lifetime(double capacity, double c, double k,
                              double current) {
  KibamBattery battery({capacity, c, k});
  const auto lifetime = compute_lifetime(
      battery, LoadProfile::constant(current), {.max_time = 1e15});
  if (!lifetime) {
    throw NumericalError("calibration: battery never empties under load");
  }
  return *lifetime;
}

}  // namespace

double calibrate_flow_constant(double capacity, double available_fraction,
                               double current, double target_lifetime,
                               CalibrationOptions options) {
  KIBAMRM_REQUIRE(capacity > 0.0, "capacity must be positive");
  KIBAMRM_REQUIRE(available_fraction > 0.0 && available_fraction < 1.0,
                  "calibration needs c in (0,1): with c = 1 the flow "
                  "constant is irrelevant");
  KIBAMRM_REQUIRE(current > 0.0, "calibration current must be positive");
  KIBAMRM_REQUIRE(target_lifetime > 0.0, "target lifetime must be positive");
  KIBAMRM_REQUIRE(options.k_lower > 0.0 && options.k_upper > options.k_lower,
                  "invalid calibration bracket");

  const double life_lo = constant_load_lifetime(capacity, available_fraction,
                                                options.k_lower, current);
  const double life_hi = constant_load_lifetime(capacity, available_fraction,
                                                options.k_upper, current);
  if (target_lifetime < life_lo || target_lifetime > life_hi) {
    throw NumericalError(
        "calibrate_flow_constant: target lifetime outside the attainable "
        "range of the bracket");
  }

  double lo = options.k_lower;
  double hi = options.k_upper;
  for (int i = 0; i < options.max_iterations; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric: k spans decades
    const double life = constant_load_lifetime(capacity, available_fraction,
                                               mid, current);
    if (life < target_lifetime) {
      lo = mid;
    } else {
      hi = mid;
    }
    if ((hi - lo) / hi < options.tolerance) break;
  }
  return std::sqrt(lo * hi);
}

}  // namespace kibamrm::battery
