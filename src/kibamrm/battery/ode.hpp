// Fixed-step classical Runge-Kutta (RK4) integration for small ODE systems.
//
// Used by the modified KiBaM (whose recovery term has no closed form) and in
// tests as an independent cross-check of the analytical KiBaM solution.
#pragma once

#include <array>
#include <functional>

namespace kibamrm::battery {

/// State of a two-dimensional ODE system (the two wells).
using WellVector = std::array<double, 2>;

/// Right-hand side f(t, y) -> dy/dt.
using WellOde = std::function<WellVector(double, const WellVector&)>;

/// Advances y from t over `dt` with `steps` RK4 sub-steps (steps >= 1).
WellVector rk4_advance(const WellOde& f, double t, WellVector y, double dt,
                       int steps);

/// Integrates until either `horizon` elapses or `event(y)` becomes true,
/// bisecting the final step to locate the event time to `tolerance`.
/// Returns the event time if hit, along with the final state through the
/// output parameters.
struct OdeEventResult {
  bool event_hit = false;
  double event_time = 0.0;   // absolute time of the event if hit
  WellVector state{};        // state at the event or at the horizon
};

OdeEventResult rk4_until_event(const WellOde& f, double t0,
                               const WellVector& y0, double horizon,
                               double step,
                               const std::function<bool(const WellVector&)>&
                                   event,
                               double tolerance = 1e-10);

}  // namespace kibamrm::battery
