// Piecewise-constant load profiles.
//
// The paper's deterministic workloads (Sec. 3, Table 1, Fig. 2) are square
// waves: current I during the "on" half-period, 0 during the "off"
// half-period.  A LoadProfile is a finite list of (duration, current)
// segments, optionally repeated periodically forever.
#pragma once

#include <vector>

namespace kibamrm::battery {

/// One constant-current segment.
struct LoadSegment {
  double duration;  // > 0, time units
  double current;   // >= 0, current units
};

class LoadProfile {
 public:
  /// A profile that repeats `segments` cyclically forever if `periodic`,
  /// or holds the last segment's current forever otherwise.
  explicit LoadProfile(std::vector<LoadSegment> segments, bool periodic = true);

  /// Constant current forever.
  static LoadProfile constant(double current);

  /// Square wave of the given frequency: each period 1/f consists of an
  /// "on" half at `current` followed by an "off" half at 0 (the paper's
  /// duty cycle is always 50%).  `on_first` selects whether the wave starts
  /// in the on phase (the paper's convention).
  static LoadProfile square_wave(double frequency, double current,
                                 bool on_first = true);

  /// Current at absolute time t >= 0.
  double current_at(double t) const;

  /// Average current over one period (periodic) or over the given horizon.
  double average_current(double horizon) const;

  /// Iteration support for the segment walker below.
  const std::vector<LoadSegment>& segments() const { return segments_; }
  bool periodic() const { return periodic_; }
  double cycle_duration() const { return cycle_duration_; }

 private:
  std::vector<LoadSegment> segments_;
  bool periodic_;
  double cycle_duration_ = 0.0;
};

/// Streams the segments of a profile in time order, indefinitely for
/// periodic profiles.  Keeps O(1) state; used by the lifetime driver.
class SegmentWalker {
 public:
  explicit SegmentWalker(const LoadProfile& profile);
  /// The walker only references the profile; a temporary would dangle
  /// after the constructor's full expression (ASan: stack-use-after-scope).
  explicit SegmentWalker(LoadProfile&&) = delete;

  /// The current segment's current.
  double current() const;
  /// Remaining duration of the current segment (infinity for the final
  /// held segment of a non-periodic profile).
  double remaining() const;
  /// Consumes `dt <= remaining()` of the current segment, moving to the
  /// next segment when it is exhausted.
  void consume(double dt);

 private:
  const LoadProfile& profile_;
  std::size_t index_ = 0;
  double used_in_segment_ = 0.0;
  bool past_end_ = false;  // non-periodic profile ran out of segments
};

}  // namespace kibamrm::battery
