// The Rakhmatov-Vrudhula diffusion battery model (the paper's ref. [2]:
// "An analytical high-level battery model for use in energy management of
// portable electronic systems", ICCAD'01).
//
// The model tracks the *apparent* charge drawn from a one-dimensional
// diffusion process.  For a load i(tau) the battery is empty at the first
// time L with
//
//   alpha = int_0^L i(tau) dtau
//         + 2 sum_{m=1}^inf int_0^L i(tau) e^{-beta^2 m^2 (L - tau)} dtau,
//
// where alpha is the battery's charge capacity and beta captures the
// diffusion rate.  The first term is the charge actually consumed; the sum
// is the transient "unavailable" charge that diffuses back during rest --
// the same recovery phenomenon the KiBaM models with its bound well, under
// a different (infinite-mode) relaxation spectrum.
//
// For piecewise-constant loads each mode integral obeys a one-line
// exponential update, so the model composes exactly across segments:
//   s_m(t + dt) = s_m(t) e^{-lambda_m dt} + I (1 - e^{-lambda_m dt}) / lambda_m,
// with lambda_m = beta^2 m^2.  The series is truncated at `modes` terms
// (10 by default; the tail decays like 1/m^2 at full load and
// exponentially after any rest).
//
// This model is included as an extra substrate baseline: it lets users
// cross-check KiBaM recovery behaviour against an independently published
// battery law (see bench/ablation_battery_models).
#pragma once

#include <vector>

#include "kibamrm/battery/battery_model.hpp"

namespace kibamrm::battery {

struct RakhmatovVrudhulaParameters {
  /// Charge capacity alpha (charge units, e.g. As).
  double alpha = 0.0;
  /// Diffusion constant beta (per sqrt(time)); lambda_m = beta^2 m^2.
  double beta = 0.0;
  /// Number of diffusion modes retained in the series.
  int modes = 10;

  void validate() const;
};

class RakhmatovVrudhulaBattery final : public BatteryModel {
 public:
  explicit RakhmatovVrudhulaBattery(RakhmatovVrudhulaParameters params);

  void reset() override;
  std::optional<double> advance(double current, double dt) override;

  /// Remaining apparent charge alpha - sigma(t) (the model's analog of the
  /// available charge).
  double available_charge() const override;
  /// The transient unavailable charge 2 sum_m s_m (diffusing back during
  /// rest -- the analog of the bound well's deficit).
  double bound_charge() const override;
  bool empty() const override { return empty_; }

  /// Apparent drawn charge sigma(t).
  double apparent_charge() const;
  /// Net consumed charge int i dtau so far.
  double consumed_charge() const { return consumed_; }

  const RakhmatovVrudhulaParameters& parameters() const { return params_; }

 private:
  /// sigma after advancing the mode states by (current, dt), without
  /// committing.
  double sigma_after(double current, double dt) const;
  void commit(double current, double dt);

  RakhmatovVrudhulaParameters params_;
  std::vector<double> mode_state_;  // s_m
  double consumed_ = 0.0;
  bool empty_ = false;
};

/// Constant-load lifetime by the closed-form series (bisection on L);
/// cross-check for the incremental model and a convenient baseline.
/// Returns nullopt if the battery survives `max_time`.
std::optional<double> rv_constant_load_lifetime(
    const RakhmatovVrudhulaParameters& params, double current,
    double max_time = 1e9);

}  // namespace kibamrm::battery
