// The analytical Kinetic Battery Model (Sec. 3, eq. (1)).
//
// Charge is distributed over an available-charge well y1 (height h1 = y1/c)
// and a bound-charge well y2 (height h2 = y2/(1-c)):
//
//     dy1/dt = -I + k (h2 - h1)
//     dy2/dt = -k (h2 - h1)
//
// For constant I the system has a closed form.  In the transformed
// coordinates y = y1 + y2 (total charge) and delta = h2 - h1 (height
// difference) the equations decouple:
//
//     y(t)     = y(0) - I t
//     delta(t) = delta_inf + (delta(0) - delta_inf) e^{-k' t},
//
// with k' = k / (c (1-c)) and delta_inf = I / (c k').  Back-substitution
// gives y1 = c (y - (1-c) delta).  The advance routine uses this closed form
// and finds the first y1 = 0 crossing exactly: y1(t) has the shape
// alpha - beta t - gamma e^{-k' t}, whose derivative changes sign at most
// once, so the first root is isolated by at most one monotone bisection.
#pragma once

#include "kibamrm/battery/battery_model.hpp"

namespace kibamrm::battery {

/// Analytical KiBaM battery.  With available_fraction == 1 the model
/// degenerates to the linear battery dy1/dt = -I (the special case c = 1 of
/// Sec. 3, used in Figs. 7 and 9).
class KibamBattery final : public BatteryModel {
 public:
  explicit KibamBattery(KibamParameters params);

  /// Starts from explicit well contents instead of (cC, (1-c)C); used by
  /// Fig. 9's third scenario (reduced initial capacity) and by tests.
  KibamBattery(KibamParameters params, double initial_available,
               double initial_bound);

  void reset() override;
  std::optional<double> advance(double current, double dt) override;
  double available_charge() const override { return y1_; }
  double bound_charge() const override { return y2_; }
  bool empty() const override { return empty_; }

  const KibamParameters& parameters() const { return params_; }

  /// Height of the available-charge well, h1 = y1 / c.
  double available_height() const;
  /// Height of the bound-charge well, h2 = y2 / (1 - c); 0 when c == 1.
  double bound_height() const;

 private:
  /// Evaluates (y1, y2) after elapsed time `t` under constant `current`
  /// from the current state, without committing.
  struct WellState {
    double y1;
    double y2;
  };
  WellState evaluate(double current, double t) const;

  /// First root of y1 in (0, dt], if any, for the closed-form segment.
  std::optional<double> first_empty_crossing(double current, double dt) const;

  KibamParameters params_;
  double initial_y1_;
  double initial_y2_;
  double y1_;
  double y2_;
  bool empty_ = false;
};

}  // namespace kibamrm::battery
