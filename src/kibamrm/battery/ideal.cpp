#include "kibamrm/battery/ideal.hpp"

#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

IdealBattery::IdealBattery(double capacity)
    : capacity_(capacity), charge_(capacity) {
  KIBAMRM_REQUIRE(capacity > 0.0, "ideal battery capacity must be positive");
}

void IdealBattery::reset() {
  charge_ = capacity_;
  empty_ = false;
}

std::optional<double> IdealBattery::advance(double current, double dt) {
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  KIBAMRM_REQUIRE(dt >= 0.0, "time step must be >= 0");
  if (empty_) return 0.0;
  const double consumed = current * dt;
  if (consumed >= charge_ && current > 0.0) {
    const double crossing = charge_ / current;
    charge_ = 0.0;
    empty_ = true;
    return crossing;
  }
  charge_ -= consumed;
  return std::nullopt;
}

}  // namespace kibamrm::battery
