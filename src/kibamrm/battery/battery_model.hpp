// Common interface for discharge models (Sec. 2 and 3 of the paper).
//
// A battery model is a stateful object advanced segment-by-segment under a
// piecewise-constant current.  `advance` must detect the *first* instant the
// battery becomes empty inside the segment (the paper defines the lifetime
// L = min{t | y1(t) = 0}, Sec. 4.2) -- once empty, a model stays empty.
#pragma once

#include <optional>

namespace kibamrm::battery {

/// Parameters of the Kinetic Battery Model (Sec. 3, Fig. 1).
struct KibamParameters {
  /// Total capacity C (charge units: As or mAh, caller's choice).
  double capacity = 0.0;
  /// Fraction c in (0, 1] of the capacity in the available-charge well.
  double available_fraction = 1.0;
  /// Well-flow constant k (per time unit); 0 disables the bound well flow.
  double flow_constant = 0.0;

  /// Initial charge in the available-charge well, y1(0) = c * C.
  double initial_available() const { return available_fraction * capacity; }
  /// Initial charge in the bound-charge well, y2(0) = (1 - c) * C.
  double initial_bound() const {
    return (1.0 - available_fraction) * capacity;
  }
  /// Height-difference relaxation rate k' = k / (c (1 - c)); infinity when
  /// c == 1 (the bound well is degenerate and never consulted then).
  double k_prime() const;

  /// Throws ModelError if the parameters are out of range.
  void validate() const;
};

/// Battery state/evolution interface shared by all discharge models.
class BatteryModel {
 public:
  virtual ~BatteryModel() = default;

  /// Restores the full initial charge.
  virtual void reset() = 0;

  /// Advances the model by `dt` time units under constant discharge current
  /// `current` (>= 0).  If the battery becomes empty at time e in (0, dt],
  /// the state is frozen at the empty point and e is returned; afterwards
  /// the model reports empty() and further advances return 0.
  virtual std::optional<double> advance(double current, double dt) = 0;

  /// Charge currently in the available-charge well (y1).
  virtual double available_charge() const = 0;

  /// Charge currently in the bound-charge well (y2); 0 for models without
  /// a bound well.
  virtual double bound_charge() const = 0;

  /// y1 + y2.
  double total_charge() const { return available_charge() + bound_charge(); }

  /// True once the available charge has hit zero.
  virtual bool empty() const = 0;
};

}  // namespace kibamrm::battery
