// The ideal battery of Sec. 2: constant voltage, load-independent capacity.
// Lifetime under constant load is simply L = C / I; under a profile it is
// the first time the integrated current reaches C.
#pragma once

#include "kibamrm/battery/battery_model.hpp"

namespace kibamrm::battery {

class IdealBattery final : public BatteryModel {
 public:
  explicit IdealBattery(double capacity);

  void reset() override;
  std::optional<double> advance(double current, double dt) override;
  double available_charge() const override { return charge_; }
  double bound_charge() const override { return 0.0; }
  bool empty() const override { return empty_; }

  double capacity() const { return capacity_; }

 private:
  double capacity_;
  double charge_;
  bool empty_ = false;
};

}  // namespace kibamrm::battery
