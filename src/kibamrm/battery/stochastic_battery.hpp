// Stochastic discrete-charge battery model (after Chiasserini & Rao [6] and
// the stochastic evaluation of the modified KiBaM in Rao et al. [9]).
//
// The battery holds an integer number of charge units.  Time advances in
// fixed slots.  A slot under load consumes current*slot worth of units
// (fractions accumulate); an idle slot recovers one unit with a probability
// that *decays exponentially with the depth of discharge*:
//
//     p_recover = exp(-g * (units_consumed_net / total_units))
//
// capped by the charge still waiting in the bound store (recovery cannot
// create charge).  This is the mechanism through which pulsed discharge at
// different frequencies yields different lifetimes even at equal duty cycle
// -- the qualitative effect the experimental column of Table 1 shows and the
// deterministic (modified) KiBaM misses.
//
// The model intentionally exposes the same BatteryModel interface, but note
// that advance() is *random*: drive it repeatedly and average (see
// sample_lifetimes in core/simulator.hpp or bench/table1).
#pragma once

#include <cstdint>

#include "kibamrm/battery/battery_model.hpp"
#include "kibamrm/common/random.hpp"

namespace kibamrm::battery {

struct StochasticBatteryParameters {
  /// Charge units directly available (analog of y1(0) = c*C).
  std::uint64_t available_units = 0;
  /// Charge units in the bound store (analog of y2(0) = (1-c)*C).
  std::uint64_t bound_units = 0;
  /// Amount of charge per unit, in the caller's charge unit (e.g. As).
  double charge_per_unit = 1.0;
  /// Slot length in the caller's time unit.
  double slot_duration = 1.0;
  /// Recovery decay constant g >= 0; larger g = recovery dies off faster
  /// with depth of discharge.
  double recovery_decay = 1.0;
  /// Base recovery probability at full charge, in (0, 1].
  double base_recovery_probability = 1.0;

  void validate() const;
};

class StochasticBattery final : public BatteryModel {
 public:
  StochasticBattery(StochasticBatteryParameters params,
                    common::RandomStream rng);

  void reset() override;

  /// Advances whole slots covering `dt` (dt is accumulated across calls so
  /// sub-slot segments compose exactly).  Returns the (slot-resolution)
  /// empty-crossing time if the available store drains during the call.
  std::optional<double> advance(double current, double dt) override;

  double available_charge() const override;
  double bound_charge() const override;
  bool empty() const override { return empty_; }

 private:
  void drain(double current, double duration);
  void run_slot(double current);

  StochasticBatteryParameters params_;
  common::RandomStream rng_;
  std::uint64_t available_;     // units
  std::uint64_t bound_;         // units
  double drain_accumulator_;    // fractional units owed by the load
  double slot_accumulator_;     // fraction of the next slot already elapsed
  double elapsed_in_advance_;   // bookkeeping for crossing times
  bool empty_ = false;
};

}  // namespace kibamrm::battery
