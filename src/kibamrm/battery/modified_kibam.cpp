#include "kibamrm/battery/modified_kibam.hpp"

#include "kibamrm/battery/ode.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {

ModifiedKibamBattery::ModifiedKibamBattery(KibamParameters params,
                                           double rk4_step)
    : params_(params),
      rk4_step_(rk4_step),
      initial_bound_height_(0.0),
      y1_(params.initial_available()),
      y2_(params.initial_bound()) {
  params_.validate();
  KIBAMRM_REQUIRE(rk4_step > 0.0, "RK4 step must be positive");
  KIBAMRM_REQUIRE(params_.available_fraction < 1.0,
                  "modified KiBaM requires a bound well (c < 1)");
  initial_bound_height_ = y2_ / (1.0 - params_.available_fraction);
  KIBAMRM_REQUIRE(initial_bound_height_ > 0.0,
                  "modified KiBaM requires initial bound charge");
}

void ModifiedKibamBattery::reset() {
  y1_ = params_.initial_available();
  y2_ = params_.initial_bound();
  empty_ = false;
}

std::optional<double> ModifiedKibamBattery::advance(double current,
                                                    double dt) {
  KIBAMRM_REQUIRE(current >= 0.0, "discharge current must be >= 0");
  KIBAMRM_REQUIRE(dt >= 0.0, "time step must be >= 0");
  if (empty_) return 0.0;
  if (dt == 0.0) return std::nullopt;

  const double c = params_.available_fraction;
  const double k = params_.flow_constant;
  const double h2_0 = initial_bound_height_;

  const WellOde rhs = [&](double /*t*/, const WellVector& y) -> WellVector {
    const double h1 = y[0] / c;
    const double h2 = y[1] / (1.0 - c);
    double flow = 0.0;
    if (h2 > h1 && h1 > 0.0) {
      flow = k * (h2 / h2_0) * (h2 - h1);
    }
    return {-current + flow, -flow};
  };

  const OdeEventResult result = rk4_until_event(
      rhs, 0.0, {y1_, y2_}, dt, rk4_step_,
      [](const WellVector& y) { return y[0] <= 0.0; });

  y1_ = result.state[0] < 0.0 ? 0.0 : result.state[0];
  y2_ = result.state[1] < 0.0 ? 0.0 : result.state[1];
  if (result.event_hit) {
    y1_ = 0.0;
    empty_ = true;
    return result.event_time;
  }
  return std::nullopt;
}

}  // namespace kibamrm::battery
