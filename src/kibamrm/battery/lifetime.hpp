// Deterministic lifetime computation and well-trajectory recording.
//
// Drives any BatteryModel with a LoadProfile: the lifetime is the first
// instant the available charge hits zero (Sec. 4.2), found segment by
// segment with the model's own exact crossing detection.  The trajectory
// recorder reproduces Fig. 2 (evolution of y1 and y2 over time).
#pragma once

#include <optional>
#include <vector>

#include "kibamrm/battery/battery_model.hpp"
#include "kibamrm/battery/load_profile.hpp"

namespace kibamrm::battery {

struct LifetimeOptions {
  /// Give up (return nullopt) if the battery survives past this horizon.
  double max_time = 1e9;
  /// Cap on processed segments, guarding against zero-current loops on an
  /// effectively full battery.
  std::size_t max_segments = 100000000;
};

/// Lifetime of `model` (reset first) under `profile`; nullopt if the battery
/// outlives options.max_time.
std::optional<double> compute_lifetime(BatteryModel& model,
                                       const LoadProfile& profile,
                                       LifetimeOptions options = {});

/// One sample point of the well contents.
struct WellSample {
  double time;
  double available;  // y1
  double bound;      // y2
};

/// Evolves `model` (reset first) under `profile` and records (y1, y2) at
/// each requested time (sorted ascending).  Recording stops early if the
/// battery empties; the final sample is the empty crossing itself, so the
/// plot shows y1 reaching exactly zero like Fig. 2 would at depletion.
std::vector<WellSample> record_trajectory(BatteryModel& model,
                                          const LoadProfile& profile,
                                          const std::vector<double>& times);

}  // namespace kibamrm::battery
